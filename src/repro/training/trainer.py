"""Mini training loop used to produce the evaluation model zoo.

The trainer consumes batches of ``(input_ids, target_ids)`` produced by the
synthetic datasets in :mod:`repro.data`; ``target_ids`` uses ``-100`` to mask
positions that should not contribute to the loss (typically the document part
of a summarization example, so the model learns to generate the summary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.models.transformer import DecoderLM
from repro.training.lr_schedule import CosineWithWarmup
from repro.training.optimizer import Adam, clip_gradients

__all__ = ["TrainingConfig", "TrainingResult", "Trainer"]

Batch = tuple[np.ndarray, np.ndarray]


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run."""

    n_steps: int = 300
    batch_size: int = 16
    lr: float = 3e-3
    warmup_steps: int = 20
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    min_lr: float = 1e-4
    log_every: int = 50
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_steps <= 0:
            raise ValueError("n_steps must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


@dataclass
class TrainingResult:
    """Summary of a finished training run."""

    losses: list[float] = field(default_factory=list)
    final_loss: float = float("inf")
    n_steps: int = 0

    @property
    def initial_loss(self) -> float:
        return self.losses[0] if self.losses else float("inf")

    def improved(self) -> bool:
        """True when the smoothed final loss is below the initial loss."""
        if len(self.losses) < 2:
            return False
        tail = float(np.mean(self.losses[-max(len(self.losses) // 10, 1):]))
        return tail < self.losses[0]


class Trainer:
    """Gradient-descent trainer for :class:`DecoderLM`."""

    def __init__(
        self,
        model: DecoderLM,
        config: TrainingConfig | None = None,
        log_fn: Callable[[str], None] | None = None,
    ):
        self.model = model
        self.config = config or TrainingConfig()
        self.log_fn = log_fn
        self.optimizer = Adam(
            model,
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        # Clamp warmup so short runs (e.g. in tests) remain valid.
        warmup = min(self.config.warmup_steps, max(self.config.n_steps - 1, 0))
        self.schedule = CosineWithWarmup(
            lr=self.config.lr,
            warmup_steps=warmup,
            total_steps=self.config.n_steps,
            min_lr=self.config.min_lr,
        )

    def _log(self, message: str) -> None:
        if self.log_fn is not None:
            self.log_fn(message)

    def train(self, batches: Iterable[Batch]) -> TrainingResult:
        """Run the configured number of steps over an iterable of batches.

        The iterable is cycled if it is shorter than ``n_steps``; it may also
        be a generator that yields fresh batches forever.
        """
        result = TrainingResult()
        iterator = iter(batches)
        cached: list[Batch] = []
        exhausted = False

        for step in range(self.config.n_steps):
            try:
                if exhausted:
                    raise StopIteration
                batch = next(iterator)
                cached.append(batch)
            except StopIteration:
                exhausted = True
                if not cached:
                    raise ValueError("training iterable produced no batches") from None
                batch = cached[step % len(cached)]

            input_ids, target_ids = batch
            loss = self.model.train_step_gradients(input_ids, target_ids)
            clip_gradients(self.model, self.config.grad_clip)
            self.optimizer.step(lr=self.schedule(step))

            result.losses.append(float(loss))
            if self.config.log_every and step % self.config.log_every == 0:
                self._log(f"step {step:5d}  loss {loss:.4f}")

        result.final_loss = result.losses[-1]
        result.n_steps = self.config.n_steps
        return result

    def train_on_dataset(
        self, examples: Sequence[Batch], rng: np.random.Generator | None = None
    ) -> TrainingResult:
        """Train by sampling mini-batches (with replacement) from ``examples``.

        Each example is a ``(input_ids, target_ids)`` pair of equal-length 1-D
        arrays; examples in a batch are stacked, so all examples must share a
        common length (datasets in :mod:`repro.data` pad to a fixed length).
        """
        if not examples:
            raise ValueError("examples must be non-empty")
        rng = rng or np.random.default_rng(self.config.seed)

        def batch_generator():
            while True:
                idx = rng.integers(0, len(examples), size=self.config.batch_size)
                inputs = np.stack([examples[i][0] for i in idx])
                targets = np.stack([examples[i][1] for i in idx])
                yield inputs, targets

        return self.train(batch_generator())
