"""Tests for analysis helpers: heatmaps, sparsity sweeps, report formatting."""

import numpy as np
import pytest

from repro.analysis.heatmap import collect_attention_maps, heatmap_to_ascii
from repro.analysis.reporting import ResultTable, format_series, format_table
from repro.analysis.sparsity import sparsity_by_layer, sparsity_threshold_sweep
from repro.models.transformer import DecoderLM
from tests.conftest import tiny_config


class TestHeatmaps:
    def test_collect_attention_maps_shapes(self, rng):
        model = DecoderLM(tiny_config("alibi"), seed=0)
        ids = rng.integers(0, 64, size=10)
        maps = collect_attention_maps(model, ids)
        assert len(maps) == 2
        assert maps[0].shape == (1, 4, 10, 10)

    def test_generated_rows_only(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=0)
        ids = rng.integers(0, 64, size=12)
        maps = collect_attention_maps(model, ids, generated_rows_only=True)
        assert maps[0].shape == (1, 4, 6, 12)

    def test_ascii_rendering(self, rng):
        attn = np.abs(rng.normal(size=(20, 30)))
        art = heatmap_to_ascii(attn, width=16, height=8)
        lines = art.split("\n")
        assert len(lines) == 8
        assert all(len(line) == 16 for line in lines)

    def test_ascii_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            heatmap_to_ascii(np.zeros((2, 3, 4)))


class TestSparsityHelpers:
    def test_sparsity_by_layer_length(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=1)
        maps = collect_attention_maps(model, rng.integers(0, 64, size=8))
        values = sparsity_by_layer(maps, threshold=0.01)
        assert len(values) == 2
        assert all(0 <= v <= 100 for v in values)

    def test_threshold_sweep_monotone(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=1)
        maps = collect_attention_maps(model, rng.integers(0, 64, size=8))
        sweep = sparsity_threshold_sweep(maps, thresholds=(0.001, 0.05))
        assert np.mean(sweep[0.05]) >= np.mean(sweep[0.001])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([[1, 2.34567], [10, 0.5]], ["a", "value"], precision=2)
        lines = text.split("\n")
        assert "a" in lines[0] and "value" in lines[0]
        assert len(lines) == 4

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table([[1, 2], [3]], ["a", "b"])

    def test_format_series(self):
        text = format_series([1, 2, 3], {"x2": [2, 4, 6]}, x_label="n")
        assert "x2" in text and "n" in text

    def test_format_series_length_check(self):
        with pytest.raises(ValueError):
            format_series([1, 2], {"bad": [1]})

    def test_result_table_add_and_column(self):
        table = ResultTable("demo", ["model", "score"])
        table.add_row("a", 1.0)
        table.add_row("b", 2.0)
        assert table.column("score") == [1.0, 2.0]
        assert table.to_dicts()[1] == {"model": "b", "score": 2.0}
        text = table.to_text()
        assert "demo" in text and "model" in text

    def test_result_table_row_length_check(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_result_table_unknown_column(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(ValueError):
            table.column("missing")
