"""Shared fixtures: tiny models, datasets and tokenizers sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.registry import build_shared_tokenizer, make_dataset
from repro.data.world import SyntheticWorld
from repro.models.config import ModelConfig
from repro.models.transformer import DecoderLM
from repro.training.trainer import Trainer, TrainingConfig

TINY_VOCAB = 64


def tiny_config(positional: str = "rope", **overrides) -> ModelConfig:
    """A model config small enough for per-test construction."""
    defaults = dict(
        vocab_size=TINY_VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional=positional,
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(params=["rope", "alibi", "learned"])
def positional(request) -> str:
    """Parametrized positional-encoding family."""
    return request.param


@pytest.fixture
def tiny_model(positional) -> DecoderLM:
    """An untrained tiny model for the requested positional family."""
    return DecoderLM(tiny_config(positional), seed=0)


@pytest.fixture
def tiny_rope_model() -> DecoderLM:
    return DecoderLM(tiny_config("rope"), seed=0)


@pytest.fixture(scope="session")
def world() -> SyntheticWorld:
    return SyntheticWorld(seed=0)


@pytest.fixture(scope="session")
def tokenizer(world):
    return build_shared_tokenizer(world)


@pytest.fixture(scope="session")
def small_summarization(world):
    return make_dataset("cnn_dailymail", world=world, n_examples=8, seed=7)


@pytest.fixture(scope="session")
def small_conversation(world):
    return make_dataset("soda", world=world, n_examples=8, seed=7)


@pytest.fixture(scope="session")
def trained_tiny_model(tokenizer, small_summarization):
    """A briefly trained tiny model shared across integration tests.

    Training for ~60 steps takes a few seconds and is enough for the model to
    develop non-trivial attention structure on the synthetic summarization
    task; tests that need a *converged* model should use the on-disk zoo.
    """
    config = ModelConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=48,
        n_layers=2,
        n_heads=4,
        d_ff=96,
        max_seq_len=256,
        positional="alibi",
    )
    model = DecoderLM(config, seed=0)
    max_len = min(small_summarization.max_sequence_length(tokenizer), 160)
    pairs = small_summarization.to_training_pairs(tokenizer, max_len)
    trainer = Trainer(model, TrainingConfig(n_steps=60, batch_size=8, log_every=0, lr=3e-3))
    trainer.train_on_dataset(pairs)
    return model


def finite_difference_gradient(fn, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad
