"""Tests for cache-policy configuration dataclasses."""

import pytest

from repro.core.config import CachePolicyConfig, KeyformerConfig


class TestCachePolicyConfig:
    def test_defaults_valid(self):
        config = CachePolicyConfig()
        assert 0 < config.kv_fraction <= 1

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fraction(self, fraction):
        with pytest.raises(ValueError):
            CachePolicyConfig(kv_fraction=fraction)

    def test_invalid_recent_ratio(self):
        with pytest.raises(ValueError):
            CachePolicyConfig(recent_ratio=1.2)

    def test_invalid_positional_mode(self):
        with pytest.raises(ValueError):
            CachePolicyConfig(positional_mode="renumbered")

    def test_invalid_prompt_mode(self):
        with pytest.raises(ValueError):
            CachePolicyConfig(prompt_mode="mean")

    def test_budget_from_fraction(self):
        config = CachePolicyConfig(kv_fraction=0.5)
        assert config.resolve_budget(100) == 50

    def test_budget_absolute_override(self):
        config = CachePolicyConfig(kv_fraction=0.5, kv_budget=17)
        assert config.resolve_budget(100) == 17

    def test_budget_clamped_to_prompt(self):
        config = CachePolicyConfig(kv_budget=500)
        assert config.resolve_budget(100) == 100

    def test_budget_min_enforced(self):
        config = CachePolicyConfig(kv_fraction=0.1, min_budget=8)
        assert config.resolve_budget(20) == 8

    def test_budget_requires_positive_prompt(self):
        with pytest.raises(ValueError):
            CachePolicyConfig().resolve_budget(0)

    def test_recent_window_bounds(self):
        config = CachePolicyConfig(recent_ratio=0.3)
        assert config.resolve_recent_window(10) == 3
        assert config.resolve_recent_window(1) == 1
        with pytest.raises(ValueError):
            config.resolve_recent_window(0)

    def test_to_dict_round_trip(self):
        config = CachePolicyConfig(kv_fraction=0.7, recent_ratio=0.2)
        data = config.to_dict()
        assert data["kv_fraction"] == 0.7
        assert CachePolicyConfig(**data) == config


class TestKeyformerConfig:
    def test_defaults_match_paper(self):
        config = KeyformerConfig()
        assert config.tau_init == 1.0 and config.tau_end == 2.0
        assert config.noise == "gumbel"

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            KeyformerConfig(noise="laplace")

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            KeyformerConfig(tau_init=0.0)
        with pytest.raises(ValueError):
            KeyformerConfig(static_tau=-1.0)

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            KeyformerConfig(score_damping=0.0)
        with pytest.raises(ValueError):
            KeyformerConfig(score_damping=1.5)

    def test_invalid_resample(self):
        with pytest.raises(ValueError):
            KeyformerConfig(noise_resample="sometimes")

    def test_inherits_budget_logic(self):
        config = KeyformerConfig(kv_fraction=0.6)
        assert config.resolve_budget(50) == 30
