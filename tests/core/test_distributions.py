"""Tests for the logit-adjustment noise distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import (
    GUMBEL_MEAN,
    GUMBEL_STD,
    ConstantAdjustment,
    GaussianNoise,
    GumbelNoise,
    NoAdjustment,
    NOISE_DISTRIBUTIONS,
    make_noise,
)


class TestGumbel:
    def test_sample_moments(self):
        rng = np.random.default_rng(0)
        samples = GumbelNoise().sample(200_000, rng)
        assert abs(samples.mean() - GUMBEL_MEAN) < 0.02
        assert abs(samples.std() - GUMBEL_STD) < 0.02

    def test_custom_moments(self):
        rng = np.random.default_rng(1)
        noise = GumbelNoise(mu=2.0, sigma=0.5)
        samples = noise.sample(200_000, rng)
        assert abs(samples.mean() - 2.0) < 0.02
        assert abs(samples.std() - 0.5) < 0.02

    def test_skewness_positive(self):
        """The Gumbel distribution is right-skewed (bias towards maxima)."""
        rng = np.random.default_rng(2)
        samples = GumbelNoise().sample(100_000, rng)
        centered = samples - samples.mean()
        skew = np.mean(centered**3) / samples.std() ** 3
        assert skew > 0.5

    def test_pdf_integrates_to_one(self):
        noise = GumbelNoise()
        xs = np.linspace(-8, 15, 4000)
        integral = np.trapezoid(noise.pdf(xs), xs)
        np.testing.assert_allclose(integral, 1.0, atol=1e-3)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            GumbelNoise(sigma=0.0)


class TestGaussian:
    def test_sample_moments(self):
        rng = np.random.default_rng(3)
        samples = GaussianNoise().sample(200_000, rng)
        assert abs(samples.mean() - GUMBEL_MEAN) < 0.02
        assert abs(samples.std() - GUMBEL_STD) < 0.02

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        samples = GaussianNoise(mu=0.0, sigma=1.0).sample(100_000, rng)
        skew = np.mean(samples**3)
        assert abs(skew) < 0.05

    def test_pdf_peak_at_mean(self):
        noise = GaussianNoise(mu=1.0, sigma=2.0)
        assert noise.pdf(np.array([1.0]))[0] > noise.pdf(np.array([3.0]))[0]


class TestConstantAndNone:
    def test_constant_value(self):
        rng = np.random.default_rng(5)
        samples = ConstantAdjustment(0.25).sample(10, rng)
        np.testing.assert_allclose(samples, 0.25)

    def test_none_is_zero(self):
        rng = np.random.default_rng(6)
        np.testing.assert_allclose(NoAdjustment().sample(10, rng), 0.0)

    def test_no_density_defined(self):
        with pytest.raises(NotImplementedError):
            NoAdjustment().pdf(np.zeros(3))


class TestFactory:
    @pytest.mark.parametrize("name", NOISE_DISTRIBUTIONS)
    def test_make_all(self, name):
        assert make_noise(name).name == name

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_noise("cauchy")

    @given(st.sampled_from(NOISE_DISTRIBUTIONS), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_property_sample_shape_and_finiteness(self, name, size):
        rng = np.random.default_rng(size)
        samples = make_noise(name).sample(size, rng)
        assert samples.shape == (size,)
        assert np.all(np.isfinite(samples))
