"""Tests for the Keyformer eviction policy (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.temperature import ConstantTauSchedule, LinearTauSchedule
from repro.models.tensor_ops import softmax


def prompt_tensors(rng, batch=1, heads=2, t=20):
    logits = rng.normal(size=(batch, heads, t, t))
    mask = np.triu(np.ones((t, t), dtype=bool), k=1)
    logits = np.where(mask[None, None], -np.inf, logits)
    return logits, softmax(logits, axis=-1)


def make_policy(**kwargs):
    policy = KeyformerPolicy(KeyformerConfig(**kwargs))
    policy.setup(n_layers=2, n_heads=2, batch_size=1, prompt_len=20, max_new_tokens=10)
    return policy


class TestBudget:
    def test_budget_and_recent_window(self):
        policy = make_policy(kv_fraction=0.5, recent_ratio=0.3)
        assert policy.budget == 10
        assert policy.recent_window == 3

    def test_initial_selection_respects_budget(self, rng):
        policy = make_policy(kv_fraction=0.5, recent_ratio=0.3)
        logits, probs = prompt_tensors(rng)
        selection = policy.initial_selection(0, probs, logits, np.arange(20))
        assert selection.shape == (1, 2, 10)

    def test_no_eviction_when_prompt_fits(self, rng):
        policy = make_policy(kv_fraction=1.0)
        logits, probs = prompt_tensors(rng)
        assert policy.initial_selection(0, probs, logits, np.arange(20)) is None


class TestAlgorithmOne:
    def test_recent_window_always_kept(self, rng):
        policy = make_policy(kv_fraction=0.5, recent_ratio=0.4)
        logits, probs = prompt_tensors(rng)
        selection = policy.initial_selection(0, probs, logits, np.arange(20))
        w = policy.recent_window
        for head in range(2):
            assert set(range(20 - w, 20)).issubset(set(selection[0, head].tolist()))

    def test_key_tokens_follow_score(self, rng):
        """A token that dominates attention must survive eviction."""
        policy = make_policy(kv_fraction=0.4, recent_ratio=0.25, noise="none")
        logits, probs = prompt_tensors(rng)
        logits = logits.copy()
        logits[..., 2] += 15.0  # token 2 gets huge logits in every row
        probs = softmax(logits, axis=-1)
        selection = policy.initial_selection(0, probs, logits, np.arange(20))
        assert np.all((selection == 2).any(axis=-1))

    def test_step_keeps_cache_at_budget(self, rng):
        policy = make_policy(kv_fraction=0.5)
        logits, probs = prompt_tensors(rng)
        policy.initial_selection(0, probs, logits, np.arange(20))
        cache_len = policy.budget + 1  # one token appended
        step_logits = rng.normal(size=(1, 2, cache_len))
        step_probs = softmax(step_logits, axis=-1)
        positions = np.broadcast_to(np.arange(cache_len), (1, 2, cache_len))
        selection = policy.step_selection(0, step_logits, step_probs, positions, 1)
        assert selection.shape[-1] == policy.budget

    def test_score_state_stays_aligned_after_eviction(self, rng):
        policy = make_policy(kv_fraction=0.5)
        logits, probs = prompt_tensors(rng)
        policy.initial_selection(0, probs, logits, np.arange(20))
        assert policy.score.get(0).shape[-1] == policy.budget
        cache_len = policy.budget + 1
        step_logits = rng.normal(size=(1, 2, cache_len))
        positions = np.broadcast_to(np.arange(cache_len), (1, 2, cache_len))
        policy.step_selection(0, step_logits, softmax(step_logits, -1), positions, 1)
        assert policy.score.get(0).shape[-1] == policy.budget

    def test_setup_installs_dynamic_schedule(self):
        policy = make_policy(tau_init=1.0, tau_end=2.0)
        assert isinstance(policy.score.tau_schedule, LinearTauSchedule)
        assert policy.score.tau_schedule(0) == pytest.approx(1.0)
        assert policy.score.tau_schedule(10) == pytest.approx(2.0)

    def test_static_tau_overrides_schedule(self):
        policy = make_policy(static_tau=5.0)
        assert isinstance(policy.score.tau_schedule, ConstantTauSchedule)
        assert policy.score.tau_schedule(7) == 5.0

    def test_setup_resets_score_state(self, rng):
        policy = make_policy(kv_fraction=0.5)
        logits, probs = prompt_tensors(rng)
        policy.initial_selection(0, probs, logits, np.arange(20))
        policy.setup(2, 2, 1, 20, 10)
        assert not policy.score.has(0)


class TestSharedScore:
    def test_selection_deferred_to_last_layer(self, rng):
        policy = make_policy(kv_fraction=0.5, shared_score=True)
        assert policy.shared_selection is True
        logits, probs = prompt_tensors(rng)
        assert policy.initial_selection(0, probs, logits, np.arange(20)) is None
        selection = policy.initial_selection(1, probs, logits, np.arange(20))
        assert selection is not None
        assert selection.shape[-1] == policy.budget

    def test_per_layer_mode_selects_immediately(self, rng):
        policy = make_policy(kv_fraction=0.5, shared_score=False)
        logits, probs = prompt_tensors(rng)
        assert policy.initial_selection(0, probs, logits, np.arange(20)) is not None


class TestDescribe:
    def test_describe_reports_keyformer_settings(self):
        policy = make_policy(kv_fraction=0.6, noise="gaussian", positional_mode="new")
        info = policy.describe()
        assert info["policy"] == "keyformer"
        assert info["noise"] == "gaussian"
        assert info["positional_mode"] == "new"
        assert info["budget"] == 12

    def test_reorder_moves_score_state(self, rng):
        policy = make_policy(kv_fraction=0.5)
        logits, probs = prompt_tensors(rng, batch=2)
        policy.setup(2, 2, 2, 20, 10)
        policy.initial_selection(0, probs, logits, np.arange(20))
        before = policy.score.get(0).copy()
        policy.reorder(np.array([1, 0]))
        np.testing.assert_allclose(policy.score.get(0)[0], before[1])
