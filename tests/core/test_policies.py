"""Tests for the baseline eviction policies and the mixed top-k selection helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CachePolicyConfig
from repro.core.policies import (
    DilatedWindowPolicy,
    FullAttentionPolicy,
    H2OPolicy,
    KeyAttentionPolicy,
    RandomEvictionPolicy,
    StreamingLLMPolicy,
    WindowAttentionPolicy,
    mixed_topk_selection,
)
from repro.core.registry import POLICIES, make_policy
from repro.models.tensor_ops import softmax


def prompt_tensors(rng, batch=1, heads=2, t=20):
    logits = rng.normal(size=(batch, heads, t, t))
    mask = np.triu(np.ones((t, t), dtype=bool), k=1)
    logits = np.where(mask[None, None], -np.inf, logits)
    return logits, softmax(logits, axis=-1)


def setup_policy(policy, prompt_len=20, heads=2, max_new=10):
    policy.setup(
        n_layers=2, n_heads=heads, batch_size=1, prompt_len=prompt_len, max_new_tokens=max_new
    )
    return policy


class TestMixedTopkSelection:
    def test_keeps_recent_window(self, rng):
        scores = rng.normal(size=(1, 2, 12))
        selection = mixed_topk_selection(scores, budget=6, recent_window=3)
        assert selection.shape == (1, 2, 6)
        for head in range(2):
            assert {9, 10, 11}.issubset(set(selection[0, head].tolist()))

    def test_key_tokens_are_top_scoring(self):
        scores = np.array([[[5.0, 1.0, 9.0, 0.5, 0.1, 0.2, 0.3, 0.4]]])
        selection = mixed_topk_selection(scores, budget=4, recent_window=2)
        # Recent window = {6, 7}; top-2 of the first 6 entries are {2, 0}.
        assert set(selection[0, 0].tolist()) == {0, 2, 6, 7}

    def test_no_eviction_when_budget_covers_all(self, rng):
        scores = rng.normal(size=(1, 1, 5))
        selection = mixed_topk_selection(scores, budget=8, recent_window=2)
        np.testing.assert_array_equal(selection[0, 0], np.arange(5))

    def test_pure_window_when_no_key_budget(self, rng):
        scores = rng.normal(size=(1, 1, 10))
        selection = mixed_topk_selection(scores, budget=4, recent_window=4)
        np.testing.assert_array_equal(selection[0, 0], np.arange(6, 10))

    @given(
        st.integers(2, 40),  # length
        st.integers(1, 40),  # budget
        st.integers(0, 40),  # recent window
        st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_valid_selection(self, length, budget, recent, seed):
        budget = min(budget, length)
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(1, 3, length))
        selection = mixed_topk_selection(scores, budget, recent)
        assert selection.shape == (1, 3, min(budget, length))
        for head in range(3):
            row = selection[0, head]
            assert np.all(np.diff(row) > 0)  # sorted, unique
            assert row.min() >= 0 and row.max() < length
            effective_recent = min(recent, budget)
            if budget < length and effective_recent > 0:
                expected_recent = set(range(length - effective_recent, length))
                assert expected_recent.issubset(set(row.tolist()))


class TestFullAttention:
    def test_never_evicts(self, rng):
        policy = setup_policy(FullAttentionPolicy())
        logits, probs = prompt_tensors(rng)
        assert policy.initial_selection(0, probs, logits) is None
        step_logits = rng.normal(size=(1, 2, 30))
        assert policy.step_selection(0, step_logits, step_logits, None, 1) is None

    def test_budget_is_whole_sequence(self):
        policy = setup_policy(FullAttentionPolicy(), prompt_len=50, max_new=20)
        assert policy.budget == 70


class TestWindowAttention:
    def test_keeps_most_recent(self, rng):
        policy = setup_policy(WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5)))
        logits, probs = prompt_tensors(rng)
        selection = policy.initial_selection(0, probs, logits)
        np.testing.assert_array_equal(selection[0, 0], np.arange(10, 20))

    def test_step_drops_oldest(self, rng):
        policy = setup_policy(WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5)))
        step_logits = rng.normal(size=(1, 2, 11))
        selection = policy.step_selection(0, step_logits, step_logits, None, 1)
        np.testing.assert_array_equal(selection[0, 0], np.arange(1, 11))

    def test_no_eviction_below_budget(self, rng):
        policy = setup_policy(WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5)))
        step_logits = rng.normal(size=(1, 2, 5))
        assert policy.step_selection(0, step_logits, step_logits, None, 1) is None


class TestDilatedWindow:
    def test_stride_pattern(self, rng):
        policy = setup_policy(DilatedWindowPolicy(CachePolicyConfig(kv_fraction=0.25), dilation=1))
        logits, probs = prompt_tensors(rng)
        selection = policy.initial_selection(0, probs, logits)
        # Budget 5, dilation 1 -> every other token counting back from 19.
        np.testing.assert_array_equal(selection[0, 0], [11, 13, 15, 17, 19])

    def test_invalid_dilation(self):
        with pytest.raises(ValueError):
            DilatedWindowPolicy(dilation=-1)


class TestH2O:
    def test_keeps_heavy_hitters(self, rng):
        policy = setup_policy(H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5)))
        logits, probs = prompt_tensors(rng)
        # Make token 2 a heavy hitter for every head.
        probs = probs.copy()
        probs[..., 2] += 5.0
        selection = policy.initial_selection(0, probs, logits)
        assert np.all((selection == 2).any(axis=-1))

    def test_score_state_tracks_cache_after_eviction(self, rng):
        policy = setup_policy(H2OPolicy(CachePolicyConfig(kv_fraction=0.5)))
        logits, probs = prompt_tensors(rng)
        selection = policy.initial_selection(0, probs, logits)
        assert policy.score.get(0).shape[-1] == selection.shape[-1]
        # Next step: cache grew by one token.
        step_probs = np.abs(rng.normal(size=(1, 2, selection.shape[-1] + 1)))
        new_selection = policy.step_selection(0, step_probs, step_probs, None, 1)
        assert new_selection.shape[-1] == policy.budget

    def test_default_recent_ratio_is_half(self):
        assert H2OPolicy().config.recent_ratio == 0.5


class TestKeyAttention:
    def test_ignores_recency(self, rng):
        policy = setup_policy(KeyAttentionPolicy(CachePolicyConfig(kv_fraction=0.25)))
        logits, probs = prompt_tensors(rng)
        probs = probs.copy()
        probs[..., :5] += 10.0  # early tokens dominate
        selection = policy.initial_selection(0, probs, logits)
        # All selected tokens are the early heavy ones, not the recent window.
        assert np.all(selection[0, 0] < 5)


class TestStreamingLLM:
    def test_keeps_sinks_and_recent(self, rng):
        policy = setup_policy(
            StreamingLLMPolicy(CachePolicyConfig(kv_fraction=0.5), n_sinks=4)
        )
        logits, probs = prompt_tensors(rng)
        selection = policy.initial_selection(0, probs, logits)
        row = selection[0, 0]
        assert set(range(4)).issubset(set(row.tolist()))
        assert set(range(14, 20)).issubset(set(row.tolist()))
        assert row.size == policy.budget

    def test_invalid_sinks(self):
        with pytest.raises(ValueError):
            StreamingLLMPolicy(n_sinks=-1)


class TestRandomEviction:
    def test_selection_valid_and_deterministic_per_seed(self, rng):
        policy_a = setup_policy(RandomEvictionPolicy(CachePolicyConfig(kv_fraction=0.5, seed=3)))
        policy_b = setup_policy(RandomEvictionPolicy(CachePolicyConfig(kv_fraction=0.5, seed=3)))
        logits, probs = prompt_tensors(rng)
        sel_a = policy_a.initial_selection(0, probs, logits)
        sel_b = policy_b.initial_selection(0, probs, logits)
        np.testing.assert_array_equal(sel_a, sel_b)
        assert sel_a.shape[-1] == policy_a.budget


class TestRegistry:
    @pytest.mark.parametrize("name", POLICIES)
    def test_make_all_policies(self, name):
        policy = make_policy(name, kv_fraction=0.5)
        assert policy.name == name

    def test_policy_specific_kwargs(self):
        assert make_policy("streaming-llm", n_sinks=2).n_sinks == 2
        assert make_policy("dilated-window", dilation=3).dilation == 3
        assert make_policy("keyformer", tau_end=4.0).config.tau_end == 4.0

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy("topk-magic")

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            make_policy("window", dilation=2)

    def test_describe_contains_budget(self):
        policy = make_policy("h2o", kv_fraction=0.4)
        policy.setup(2, 2, 1, 100, 10)
        info = policy.describe()
        assert info["policy"] == "h2o"
        assert info["budget"] == 40
