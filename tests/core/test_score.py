"""Tests for the accumulated-attention and Keyformer score functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.score import AccumulatedAttentionScore, KeyformerScore, entropy
from repro.models.tensor_ops import softmax


def make_prompt_tensors(rng, batch=1, heads=2, t=6):
    logits = rng.normal(size=(batch, heads, t, t))
    mask = np.triu(np.ones((t, t), dtype=bool), k=1)
    logits = np.where(mask[None, None], -np.inf, logits)
    probs = softmax(logits, axis=-1)
    return logits, probs


class TestEntropy:
    def test_uniform_has_max_entropy(self):
        uniform = np.full(8, 1 / 8)
        peaked = np.zeros(8)
        peaked[0] = 1.0
        assert entropy(uniform) > entropy(peaked)
        np.testing.assert_allclose(entropy(uniform), np.log(8), atol=1e-12)

    def test_zero_entries_handled(self):
        p = np.array([0.5, 0.5, 0.0])
        assert np.isfinite(entropy(p))


class TestAccumulatedAttentionScore:
    def test_prompt_all_mode_is_column_sum(self, rng):
        logits, probs = make_prompt_tensors(rng)
        score = AccumulatedAttentionScore(prompt_mode="all")
        out = score.init_from_prompt(0, probs, logits)
        np.testing.assert_allclose(out, probs.sum(axis=-2), atol=1e-12)

    def test_prompt_last_mode_is_last_row(self, rng):
        logits, probs = make_prompt_tensors(rng)
        score = AccumulatedAttentionScore(prompt_mode="last")
        out = score.init_from_prompt(0, probs, logits)
        np.testing.assert_allclose(out, probs[..., -1, :], atol=1e-12)

    def test_update_accumulates_and_grows(self, rng):
        score = AccumulatedAttentionScore()
        first = np.abs(rng.normal(size=(1, 2, 4)))
        score.update(0, first, first)
        second = np.abs(rng.normal(size=(1, 2, 5)))  # one new cache slot
        out = score.update(0, second, second)
        np.testing.assert_allclose(out[..., :4], first + second[..., :4], atol=1e-12)
        np.testing.assert_allclose(out[..., 4], second[..., 4], atol=1e-12)

    def test_shrinking_contribution_raises(self, rng):
        score = AccumulatedAttentionScore()
        score.update(0, np.ones((1, 1, 5)), np.ones((1, 1, 5)))
        with pytest.raises(ValueError):
            score.update(0, np.ones((1, 1, 3)), np.ones((1, 1, 3)))

    def test_damping_decays_history(self):
        score = AccumulatedAttentionScore(damping=0.5)
        ones = np.ones((1, 1, 3))
        score.update(0, ones, ones)
        out = score.update(0, ones, ones)
        np.testing.assert_allclose(out, 0.5 * 1 + 1)

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            AccumulatedAttentionScore(damping=0.0)

    def test_per_layer_isolation(self, rng):
        score = AccumulatedAttentionScore(shared=False)
        a = np.abs(rng.normal(size=(1, 1, 3)))
        b = np.abs(rng.normal(size=(1, 1, 3)))
        score.update(0, a, a)
        score.update(1, b, b)
        np.testing.assert_allclose(score.get(0), a)
        np.testing.assert_allclose(score.get(1), b)

    def test_shared_accumulates_across_layers(self, rng):
        score = AccumulatedAttentionScore(shared=True)
        a = np.abs(rng.normal(size=(1, 1, 3)))
        b = np.abs(rng.normal(size=(1, 1, 3)))
        score.update(0, a, a)
        score.update(1, b, b)
        np.testing.assert_allclose(score.get(0), a + b)
        np.testing.assert_allclose(score.get(1), a + b)

    def test_gather_keeps_selected_entries(self, rng):
        score = AccumulatedAttentionScore()
        values = np.arange(6, dtype=np.float64).reshape(1, 1, 6)
        score.update(0, values, values)
        indices = np.array([[[0, 2, 5]]])
        score.gather(0, indices)
        np.testing.assert_allclose(score.get(0), [[[0, 2, 5]]])

    def test_gather_missing_layer_is_noop(self):
        score = AccumulatedAttentionScore()
        score.gather(3, np.zeros((1, 1, 1), dtype=np.int64))  # must not raise

    def test_reorder_batch(self, rng):
        score = AccumulatedAttentionScore()
        values = rng.normal(size=(3, 2, 4))
        score.update(0, values, values)
        score.reorder(np.array([2, 0, 0]))
        np.testing.assert_allclose(score.get(0)[0], values[2])
        np.testing.assert_allclose(score.get(0)[1], values[0])

    def test_get_uninitialized_raises(self):
        with pytest.raises(KeyError):
            AccumulatedAttentionScore().get(0)


class TestKeyformerScore:
    def test_prompt_requires_logits(self, rng):
        _, probs = make_prompt_tensors(rng)
        with pytest.raises(ValueError):
            KeyformerScore().init_from_prompt(0, probs, None)

    def test_noiseless_tau1_matches_accumulated_attention(self, rng):
        """With no noise and τ=1 the Keyformer score reduces to H2O's score."""
        logits, probs = make_prompt_tensors(rng)
        keyformer = KeyformerScore(noise="none")
        baseline = AccumulatedAttentionScore()
        kf = keyformer.init_from_prompt(0, probs, logits)
        h2o = baseline.init_from_prompt(0, probs, logits)
        np.testing.assert_allclose(kf, h2o, atol=1e-9)

    def test_noisy_softmax_is_distribution(self, rng):
        score = KeyformerScore(seed=1)
        logits = rng.normal(size=(1, 2, 7))
        out = score.noisy_softmax(logits, np.arange(7), tau=1.3)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(out >= 0)

    def test_masked_logits_stay_masked(self, rng):
        score = KeyformerScore(seed=2)
        logits = rng.normal(size=(1, 1, 5))
        logits[0, 0, 3] = -np.inf
        out = score.noisy_softmax(logits, np.arange(5), tau=1.0)
        assert out[0, 0, 3] == 0.0

    def test_high_temperature_flattens_distribution(self, rng):
        score = KeyformerScore(noise="none")
        logits = rng.normal(size=(1, 1, 10)) * 4
        sharp = score.noisy_softmax(logits, np.arange(10), tau=1.0)
        flat = score.noisy_softmax(logits, np.arange(10), tau=50.0)
        assert entropy(flat).mean() > entropy(sharp).mean()

    def test_fixed_mode_is_deterministic(self, rng):
        logits = rng.normal(size=(1, 1, 6))
        a = KeyformerScore(seed=7, resample="fixed")
        b = KeyformerScore(seed=7, resample="fixed")
        np.testing.assert_allclose(
            a.noisy_softmax(logits, np.arange(6), 1.0),
            b.noisy_softmax(logits, np.arange(6), 1.0),
        )

    def test_per_step_mode_resamples(self, rng):
        score = KeyformerScore(seed=3, resample="per-step")
        logits = rng.normal(size=(1, 1, 6))
        first = score.noisy_softmax(logits, np.arange(6), 1.0)
        second = score.noisy_softmax(logits, np.arange(6), 1.0)
        assert not np.allclose(first, second)

    def test_gumbel_regularization_raises_entropy(self, rng):
        """Eq. 8: the expected Gumbel-adjusted distribution is more uniform."""
        logits = rng.normal(size=(1, 1, 12)) * 3
        plain = softmax(logits, axis=-1)
        score = KeyformerScore(seed=0, resample="per-step")
        draws = np.mean(
            [score.noisy_softmax(logits, np.arange(12), 1.0) for _ in range(200)], axis=0
        )
        assert entropy(draws).mean() > entropy(plain).mean()

    def test_invalid_resample(self):
        with pytest.raises(ValueError):
            KeyformerScore(resample="never")

    def test_configure_schedule(self):
        score = KeyformerScore()
        score.configure_schedule(1.0, 2.0, 10)
        assert score.tau_schedule(0) == pytest.approx(1.0)
        assert score.tau_schedule(10) == pytest.approx(2.0)

    def test_update_uses_schedule_step(self, rng):
        score = KeyformerScore(noise="none")
        score.configure_schedule(1.0, 2.0, 2)
        logits = rng.normal(size=(1, 1, 4)) * 3
        probs = softmax(logits, axis=-1)
        early = score.update(0, logits, probs, positions=np.arange(4), step=0).copy()
        score.reset()
        score.configure_schedule(1.0, 2.0, 2)
        late = score.update(0, logits, probs, positions=np.arange(4), step=2)
        # Higher τ at a later step flattens the contribution.
        assert entropy(late).mean() > entropy(early).mean()

    @given(arrays(np.float64, (1, 2, 8), elements=st.floats(-5, 5)))
    @settings(max_examples=25, deadline=None)
    def test_property_scores_nonnegative_and_bounded(self, logits):
        score = KeyformerScore(seed=0)
        out = score.update(0, logits, softmax(logits, axis=-1), positions=np.arange(8), step=1)
        assert np.all(out >= 0)
        # One update adds at most probability mass 1 per row.
        assert np.all(out.sum(axis=-1) <= 1.0 + 1e-9)
