"""Tests for the temperature schedules (Eq. 10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.temperature import ConstantTauSchedule, LinearTauSchedule


class TestConstant:
    def test_value(self):
        schedule = ConstantTauSchedule(3.5)
        assert schedule(0) == 3.5
        assert schedule(100) == 3.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConstantTauSchedule(0.0)


class TestLinear:
    def test_endpoints(self):
        schedule = LinearTauSchedule(1.0, 2.0, total_steps=10)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(10) == pytest.approx(2.0)

    def test_monotone_increasing(self):
        schedule = LinearTauSchedule(1.0, 2.0, total_steps=20)
        values = [schedule(t) for t in range(21)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_clamped_beyond_range(self):
        schedule = LinearTauSchedule(1.0, 2.0, total_steps=5)
        assert schedule(50) == pytest.approx(2.0)
        assert schedule(-3) == pytest.approx(1.0)

    def test_delta_matches_equation_10(self):
        schedule = LinearTauSchedule(1.0, 3.0, total_steps=8)
        assert schedule.delta == pytest.approx((3.0 - 1.0) / 8)
        assert schedule(4) == pytest.approx(1.0 + 4 * schedule.delta)

    def test_decreasing_schedule_supported(self):
        schedule = LinearTauSchedule(2.0, 1.0, total_steps=10)
        assert schedule(0) == pytest.approx(2.0)
        assert schedule(10) == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            LinearTauSchedule(0.0, 2.0, 10)
        with pytest.raises(ValueError):
            LinearTauSchedule(1.0, 2.0, 0)

    @given(
        st.floats(0.1, 5.0), st.floats(0.1, 5.0), st.integers(1, 100), st.integers(0, 200)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_always_within_range(self, tau_init, tau_end, total, step):
        schedule = LinearTauSchedule(tau_init, tau_end, total)
        low, high = sorted((tau_init, tau_end))
        assert low - 1e-9 <= schedule(step) <= high + 1e-9
