"""Tests for the conversation dataset and the few-shot MCQ tasks."""

import numpy as np
import pytest

from repro.data.conversation import ConversationConfig, ConversationDataset
from repro.data.fewshot import FEWSHOT_TASKS, FewShotConfig, FewShotTask, make_fewshot_task
from repro.data.registry import DATASETS, build_shared_tokenizer, make_dataset
from repro.data.summarization import IGNORE_INDEX
from repro.data.world import SyntheticWorld


class TestConversation:
    @pytest.fixture(scope="class")
    def dataset(self):
        return ConversationDataset(SyntheticWorld(seed=0), ConversationConfig(n_examples=8, seed=2))

    def test_response_restates_a_persona_fact(self, dataset):
        for example in dataset.examples:
            assert example.response in [f.sentence() for f in example.facts]
            assert example.response.split()[0] in example.question

    def test_question_comes_after_dialogue(self, dataset):
        for example in dataset.examples:
            assert example.prompt_text().endswith(example.question)

    def test_training_pairs_mask_prompt(self, dataset, tokenizer):
        max_len = dataset.max_sequence_length(tokenizer)
        pairs = dataset.to_training_pairs(tokenizer, max_len)
        for (inputs, targets), example in zip(pairs, dataset.examples):
            active = targets[targets != IGNORE_INDEX]
            expected = tokenizer.encode(example.response) + [tokenizer.vocab.eos_id]
            np.testing.assert_array_equal(active, expected[: len(active)])

    def test_eval_prompts(self, dataset, tokenizer):
        prompts = dataset.to_eval_prompts(tokenizer, limit=2)
        assert len(prompts) == 2
        assert prompts[0][0][-1] == tokenizer.vocab.sep_id

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ConversationConfig(n_examples=0)


class TestFewShot:
    def test_all_four_tasks_exist(self):
        assert len(FEWSHOT_TASKS) == 4
        assert {
            "copa-synthetic",
            "piqa-synthetic",
            "openbookqa-synthetic",
            "winogrande-synthetic",
        } == set(
            FEWSHOT_TASKS
        )

    @pytest.mark.parametrize("task_name", FEWSHOT_TASKS)
    def test_examples_well_formed(self, task_name, world):
        task = make_fewshot_task(task_name, world, FewShotConfig(n_examples=8, seed=1))
        for example in task.examples:
            assert len(example.options) == 2
            assert 0 <= example.answer_index < 2
            correct = example.options[example.answer_index]
            target = [f for f in example.facts if f.value == correct]
            assert target, "correct option must be a fact value from the context"
            assert target[0].sentence() in example.context

    def test_unknown_task_rejected(self, world):
        with pytest.raises(KeyError):
            FewShotTask("hellaswag", world)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FewShotConfig(n_options=1)

    def test_evaluation_items_structure(self, world, tokenizer):
        task = make_fewshot_task("copa-synthetic", world, FewShotConfig(n_examples=12, seed=0))
        items = task.evaluation_items(tokenizer, n_shots=0, limit=5)
        assert len(items) == 5
        for item in items:
            assert item["prompt_ids"][0] == tokenizer.vocab.bos_id
            assert len(item["option_ids"]) == 2
            assert all(len(ids) >= 1 for ids in item["option_ids"])

    def test_fewshot_prompts_longer_than_zero_shot(self, world, tokenizer):
        task = make_fewshot_task("piqa-synthetic", world, FewShotConfig(n_examples=16, seed=0))
        zero = task.evaluation_items(tokenizer, n_shots=0, limit=3)
        five = task.evaluation_items(tokenizer, n_shots=5, limit=3)
        assert len(five[0]["prompt_ids"]) > 2 * len(zero[0]["prompt_ids"])

    def test_exemplars_do_not_overlap_queries(self, world):
        task = make_fewshot_task(
            "winogrande-synthetic", world, FewShotConfig(n_examples=10, seed=0)
        )
        exemplars = task.examples[-3:]
        prompt = task.build_prompt(task.examples[0], 3, exemplars)
        assert task.examples[0].prompt_text() in prompt
        for exemplar in exemplars:
            assert exemplar.render_with_answer() in prompt

    def test_too_many_shots_rejected(self, world, tokenizer):
        task = make_fewshot_task("copa-synthetic", world, FewShotConfig(n_examples=4, seed=0))
        with pytest.raises(ValueError):
            task.evaluation_items(tokenizer, n_shots=4, limit=2)


class TestRegistry:
    def test_registry_contains_all_datasets(self):
        assert set(("cnn_dailymail", "govreport", "soda")).issubset(set(DATASETS))

    @pytest.mark.parametrize("name", ["cnn_dailymail", "govreport", "soda", "copa-synthetic"])
    def test_make_dataset(self, name, world):
        dataset = make_dataset(name, world=world, n_examples=4, seed=9)
        assert len(dataset) == 4

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            make_dataset("wikitext")

    def test_shared_tokenizer_covers_all_datasets(self, world):
        tokenizer = build_shared_tokenizer(world)
        unk = tokenizer.vocab.unk_id
        for name in ("cnn_dailymail", "govreport", "soda"):
            dataset = make_dataset(name, world=world, n_examples=3, seed=11)
            for text in dataset.corpus_text():
                assert unk not in tokenizer.encode(text), f"OOV token in {name}"
