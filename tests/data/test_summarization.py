"""Tests for the synthetic summarization datasets."""

import numpy as np
import pytest

from repro.data.summarization import IGNORE_INDEX, SummarizationConfig, SummarizationDataset
from repro.data.world import SyntheticWorld


@pytest.fixture(scope="module")
def dataset():
    return SummarizationDataset(SyntheticWorld(seed=0), SummarizationConfig(n_examples=10, seed=1))


class TestGeneration:
    def test_deterministic(self):
        world = SyntheticWorld(seed=0)
        a = SummarizationDataset(world, SummarizationConfig(n_examples=5, seed=2))
        b = SummarizationDataset(SyntheticWorld(seed=0), SummarizationConfig(n_examples=5, seed=2))
        assert [ex.document for ex in a.examples] == [ex.document for ex in b.examples]

    def test_summary_is_fact_sentences(self, dataset):
        for example in dataset.examples:
            assert example.summary == " ".join(f.sentence() for f in example.facts)

    def test_documents_contain_facts_and_filler(self, dataset):
        for example in dataset.examples:
            assert all(f.sentence() in example.document for f in example.facts)
            assert len(example.document.split()) > len(example.summary.split())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SummarizationConfig(n_examples=0)
        with pytest.raises(ValueError):
            SummarizationConfig(n_facts=(3, 2))

    def test_govreport_preset_is_longer(self):
        world = SyntheticWorld(seed=0)
        short = SummarizationDataset(world, SummarizationConfig.cnn_dailymail_mini(n_examples=4))
        long = SummarizationDataset(world, SummarizationConfig.govreport_mini(n_examples=4))
        mean_short = np.mean([len(ex.document.split()) for ex in short.examples])
        mean_long = np.mean([len(ex.document.split()) for ex in long.examples])
        assert mean_long > 2 * mean_short

    def test_len_and_getitem(self, dataset):
        assert len(dataset) == 10
        assert dataset[0].document


class TestTokenization:
    def test_training_pairs_alignment(self, dataset, tokenizer):
        max_len = dataset.max_sequence_length(tokenizer)
        pairs = dataset.to_training_pairs(tokenizer, max_len)
        assert len(pairs) == len(dataset)
        for (inputs, targets), example in zip(pairs, dataset.examples):
            assert inputs.shape == (max_len,) and targets.shape == (max_len,)
            doc_len = len(tokenizer.encode(example.document)) + 2  # bos + sep
            # Targets before the separator (minus one) must be masked.
            assert np.all(targets[: doc_len - 1] == IGNORE_INDEX)
            # The active targets reproduce the summary token sequence + eos.
            active = targets[targets != IGNORE_INDEX]
            expected = tokenizer.encode(example.summary) + [tokenizer.vocab.eos_id]
            np.testing.assert_array_equal(active, expected[: len(active)])
            # Teacher forcing: input[t+1] equals target[t] for active positions.
            for t in np.nonzero(targets != IGNORE_INDEX)[0][:-1]:
                assert inputs[t + 1] == targets[t]

    def test_eval_prompts_end_with_separator(self, dataset, tokenizer):
        prompts = dataset.to_eval_prompts(tokenizer, limit=3)
        assert len(prompts) == 3
        for prompt_ids, reference in prompts:
            assert prompt_ids[0] == tokenizer.vocab.bos_id
            assert prompt_ids[-1] == tokenizer.vocab.sep_id
            assert isinstance(reference, str) and reference

    def test_summary_lengths(self, dataset, tokenizer):
        lengths = dataset.summary_lengths(tokenizer)
        assert len(lengths) == len(dataset)
        assert all(length > 1 for length in lengths)

    def test_truncation_respects_max_len(self, dataset, tokenizer):
        pairs = dataset.to_training_pairs(tokenizer, 32)
        assert all(inputs.shape == (32,) for inputs, _ in pairs)
