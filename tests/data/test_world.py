"""Tests for the synthetic world generator."""

from repro.data.world import Fact, SyntheticWorld


class TestFact:
    def test_sentence_and_question(self):
        fact = Fact("alice", "likes", "chess")
        assert fact.sentence() == "alice likes chess ."
        assert fact.question() == "what likes alice ?"
        assert fact.answer() == "chess"


class TestSyntheticWorld:
    def test_deterministic_given_seed(self):
        a = SyntheticWorld(seed=3).sample_facts(5)
        b = SyntheticWorld(seed=3).sample_facts(5)
        assert a == b

    def test_different_seeds_differ(self):
        a = SyntheticWorld(seed=1).sample_facts(10)
        b = SyntheticWorld(seed=2).sample_facts(10)
        assert a != b

    def test_sample_facts_distinct_entities(self):
        facts = SyntheticWorld(seed=0).sample_facts(8)
        entities = [f.entity for f in facts]
        assert len(set(entities)) == len(entities)

    def test_facts_use_known_vocabulary(self):
        world = SyntheticWorld(seed=0)
        fact = world.sample_fact()
        assert fact.entity in world.entities
        assert fact.relation in world.relations
        assert fact.value in world.relations[fact.relation]

    def test_distractor_differs_from_value(self):
        world = SyntheticWorld(seed=0)
        for _ in range(20):
            fact = world.sample_fact()
            assert world.distractor_value(fact) != fact.value

    def test_filler_sentence_has_requested_length(self):
        world = SyntheticWorld(seed=0)
        sentence = world.filler_sentence(length=5)
        assert len(sentence.split()) == 6  # 5 words + final period

    def test_compose_document_contains_all_facts(self):
        world = SyntheticWorld(seed=0)
        facts = world.sample_facts(3)
        document = world.compose_document(facts, n_filler_sentences=6)
        for fact in facts:
            assert fact.sentence() in document

    def test_compose_document_facts_early(self):
        world = SyntheticWorld(seed=0)
        facts = world.sample_facts(2)
        document = world.compose_document(facts, n_filler_sentences=12, keep_facts_early=True)
        for fact in facts:
            position = document.index(fact.sentence())
            assert position < len(document) * 0.75

    def test_full_vocabulary_covers_generated_text(self):
        world = SyntheticWorld(seed=0)
        vocab_words = set(world.full_vocabulary_text().split())
        facts = world.sample_facts(5)
        document = world.compose_document(facts, 5)
        for token in document.replace(".", " .").split():
            assert token in vocab_words
