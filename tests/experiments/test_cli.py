"""Tests for the experiment command-line interface."""

from repro.experiments.cli import EXPERIMENTS, main


class TestCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "table1" in out

    def test_no_argument_lists(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "fig01", "fig03ab", "fig03c", "fig04", "fig05", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12", "fig16",
            "table1", "table2", "table3", "table4", "appendix-a1", "heatmaps",
        }
        assert expected == set(EXPERIMENTS)

    def test_perfmodel_experiment_runs_and_saves(self, tmp_path, capsys):
        """table1 needs no trained models, so it can run end-to-end in a test."""
        assert main(["table1", "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "OOM" in out
        saved = list(tmp_path.glob("*.txt"))
        assert len(saved) == 1
        assert "keyformer_50" in saved[0].read_text()
