"""Smoke tests for every experiment runner.

Accuracy-oriented runners are exercised with small untrained models injected
into the shared :class:`ExperimentContext`, so these tests validate the
experiment plumbing (tables, sweeps, policies) without requiring the trained
model zoo; the benchmark harness runs the same runners against the trained
models to regenerate the paper's numbers.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentContext,
    run_accuracy_sweep,
    run_damping_sweep,
    run_fewshot_table,
    run_fig1_motivation,
    run_fig3_accuracy_comparison,
    run_fig3_sparsity_and_cdf,
    run_fig4_distribution_shift,
    run_fig9_speedup,
    run_fig10_breakdown,
    run_fig11_threshold_sparsity,
    run_heatmap_figures,
    run_long_context_sweep,
    run_qualitative_comparison,
    run_recent_ratio_sweep,
    run_table1_throughput,
    run_table3_ablations,
    run_table4_distributions,
    run_temperature_sweep,
)
from repro.models.model_zoo import MODEL_ZOO, get_model_config
from repro.models.transformer import DecoderLM


@pytest.fixture(scope="module")
def context():
    """Experiment context with small untrained stand-ins for the zoo models."""
    ctx = ExperimentContext()
    for name in MODEL_ZOO:
        config = get_model_config(name, vocab_size=ctx.tokenizer.vocab_size)
        # Shrink for speed; the runners only need a working model.
        config = type(config)(**{**config.to_dict(), "d_model": 32, "d_ff": 64})
        ctx._models[name] = DecoderLM(config, seed=0)
    return ctx


class TestAccuracyRunners:
    def test_accuracy_sweep_structure(self, context):
        table = run_accuracy_sweep(
            models=("gptj_mini",), tasks=("summarization",), budgets=(0.5,),
            policies=("window", "keyformer"), limit=2, context=context,
        )
        assert table.headers[:4] == ["model", "task", "policy", "kv_budget"]
        # 1 full row + 2 policies × 1 budget
        assert len(table.rows) == 3
        assert {row[2] for row in table.rows} == {"full", "window", "keyformer"}
        assert all(0.0 <= row[5] <= 100.0 for row in table.rows)

    def test_fig3_accuracy_comparison(self, context):
        table = run_fig3_accuracy_comparison(models=("mpt_mini",), limit=2, context=context)
        assert {row[1] for row in table.rows} == {"full", "key-only", "window", "h2o"}

    def test_long_context_sweep(self, context):
        table = run_long_context_sweep(
            budgets=(0.3,), policies=("keyformer",), limit=1, context=context
        )
        assert len(table.rows) == 2  # full + keyformer@0.3
        assert table.rows[0][1] == "full"


class TestAblationRunners:
    def test_damping_sweep(self, context):
        table = run_damping_sweep(damping_factors=(1.0, 0.9), limit=1, context=context)
        assert len(table.rows) == 3
        assert table.rows[0][1] == "full-attention"

    def test_recent_ratio_sweep(self, context):
        table = run_recent_ratio_sweep(
            models=("mpt_mini",), recent_ratios=(0.2, 0.5), limit=1, context=context
        )
        assert [row[1] for row in table.rows] == [0.2, 0.5]

    def test_temperature_sweep(self, context):
        table = run_temperature_sweep(static_taus=(1.0, 5.0), limit=1, context=context)
        assert table.rows[0][1] == "dynamic(1->2)"
        assert len(table.rows) == 3

    def test_table3(self, context):
        table = run_table3_ablations(limit=1, context=context)
        methods = table.column("method")
        assert "Keyformer (Org Pos)" in methods
        assert "StreamingLLM" in methods
        assert "Full (99% Accuracy)" in methods
        # The 99% row must be exactly 0.99 of the full row.
        full = table.rows[0]
        threshold = table.rows[1]
        np.testing.assert_allclose(threshold[3], 0.99 * full[3], rtol=1e-9)

    def test_table4(self, context):
        table = run_table4_distributions(models=("gptj_mini",), limit=1, context=context)
        assert {row[1] for row in table.rows} == {"gumbel", "gaussian", "constant", "none"}


class TestFewShotRunner:
    def test_table2_structure(self, context):
        table = run_fewshot_table(
            models=("cerebras_mini",), tasks=("copa-synthetic",), shots=(0,),
            policies=("full", "keyformer"), limit=2, context=context,
        )
        assert len(table.rows) == 2
        assert all(0.0 <= row[5] <= 100.0 for row in table.rows)


class TestPerformanceRunners:
    def test_fig1(self):
        latency, size = run_fig1_motivation(seq_lens=(512, 2048, 8192))
        norm = latency.column("normalized_latency")
        assert norm[0] == pytest.approx(1.0)
        assert norm[-1] > 20  # >> linear growth, paper reports > 50x
        kv = size.column("kv_cache_size_gb")
        assert kv[-1] > size.column("model_size_gb")[-1]

    def test_fig9(self):
        table = run_fig9_speedup(seq_configs=((2048, 2048),))
        by_policy = {row[1]: row[3] for row in table.rows}
        assert by_policy["keyformer"] > by_policy["h2o"] > by_policy["full"] == 1.0

    def test_fig10(self):
        table = run_fig10_breakdown(seq_lens=(1024, 4096))
        for row in table.rows:
            assert row[2] < 1.0  # Keyformer moves less KV data
            assert row[4] < 1.0  # and computes a smaller scaled dot product
            assert row[5] >= 0.0

    def test_table1(self):
        table = run_table1_throughput()
        last = table.rows[-1]
        assert last[2] == "OOM"          # full attention at 4096+4096, BS=2
        assert last[4] != "OOM"          # Keyformer fits
        first = table.rows[0]
        assert float(first[4]) > float(first[2])  # Keyformer faster at BS=1


class TestAttentionAnalysisRunners:
    def test_fig3_sparsity_and_cdf(self, context):
        sparsity, cdf = run_fig3_sparsity_and_cdf(
            models=("gptj_mini",), n_examples=1, context=context
        )
        assert len(sparsity.rows) == 2  # one row per layer
        mass = cdf.column("attention_mass")
        assert all(b >= a - 1e-9 for a, b in zip(mass, mass[1:]))

    def test_fig4(self, context):
        table = run_fig4_distribution_shift(context=context)
        quantities = table.column("quantity")
        assert "entropy" in quantities and "max probability" in quantities

    def test_fig11(self, context):
        table = run_fig11_threshold_sparsity(thresholds=(0.0, 0.05), n_examples=1, context=context)
        assert len(table.rows) == 2 * 2  # thresholds × layers

    def test_heatmaps(self, context):
        rendered = run_heatmap_figures(models=("gptj_mini",), max_heads=2, context=context)
        assert len(rendered["gptj_mini"]) == 2 * 2  # layers × heads
        assert all(isinstance(panel, str) and panel for panel in rendered["gptj_mini"])


class TestQualitativeRunner:
    def test_appendix_a1(self, context):
        table, texts = run_qualitative_comparison(max_new_tokens=6, context=context)
        assert {row[0] for row in table.rows} == {"full", "window", "h2o", "keyformer"}
        assert "reference" in texts and "document" in texts
        assert all(isinstance(text, str) for text in texts.values())
