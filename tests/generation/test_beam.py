"""Tests for beam search with per-beam KV caches."""

import numpy as np
import pytest

from repro.core.registry import make_policy
from repro.generation.beam import BeamSearch
from repro.generation.generator import Generator
from repro.models.config import GenerationConfig
from repro.models.transformer import DecoderLM
from tests.conftest import tiny_config


class TestBeamSearch:
    def test_returns_hypotheses_sorted_by_score(self, tiny_rope_model, rng):
        beam = BeamSearch(tiny_rope_model, make_policy("full"))
        prompt = rng.integers(0, 64, size=10)
        result = beam.search(prompt, GenerationConfig(max_new_tokens=5, beam_size=3))
        scores = [h.normalized_score for h in result.hypotheses]
        assert scores == sorted(scores, reverse=True)
        assert result.best.tokens == result.hypotheses[0].tokens
        assert len(result.best.tokens) <= 5

    def test_beam_at_least_as_good_as_greedy(self, rng):
        """Beam search's best raw log-probability must be >= greedy's."""
        model = DecoderLM(tiny_config("alibi"), seed=11)
        prompt = rng.integers(0, 64, size=12)
        greedy = Generator(model, make_policy("full")).generate(
            prompt, GenerationConfig(max_new_tokens=4)
        )
        beam = BeamSearch(model, make_policy("full")).search(
            prompt, GenerationConfig(max_new_tokens=4, beam_size=4, length_penalty=1.0)
        )
        full_length = [h for h in beam.hypotheses if len(h.tokens) == 4]
        assert full_length, "expected at least one full-length hypothesis"
        assert max(h.raw_score for h in full_length) >= greedy.log_probs[0] - 1e-8

    def test_beam_size_one_matches_greedy_tokens(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=12)
        prompt = rng.integers(0, 64, size=10)
        greedy = Generator(model, make_policy("full")).generate(
            prompt, GenerationConfig(max_new_tokens=5)
        )
        beam = BeamSearch(model, make_policy("full")).search(
            prompt, GenerationConfig(max_new_tokens=5, beam_size=1)
        )
        assert beam.best.tokens == greedy.sequences[0]

    def test_works_with_reduced_cache(self, tiny_rope_model, rng):
        beam = BeamSearch(tiny_rope_model, make_policy("keyformer", kv_fraction=0.5))
        prompt = rng.integers(0, 64, size=20)
        result = beam.search(prompt, GenerationConfig(max_new_tokens=6, beam_size=4))
        assert len(result.best.tokens) <= 6
        assert result.policy["policy"] == "keyformer"

    def test_eos_terminates_hypotheses(self, tiny_rope_model, rng):
        prompt = rng.integers(0, 64, size=10)
        probe = BeamSearch(tiny_rope_model, make_policy("full")).search(
            prompt, GenerationConfig(max_new_tokens=4, beam_size=2)
        )
        eos = probe.best.tokens[1] if len(probe.best.tokens) > 1 else probe.best.tokens[0]
        result = BeamSearch(tiny_rope_model, make_policy("full")).search(
            prompt, GenerationConfig(max_new_tokens=8, beam_size=2, eos_token_id=eos)
        )
        assert any(h.tokens and h.tokens[-1] == eos for h in result.hypotheses)

    def test_empty_prompt_rejected(self, tiny_rope_model):
        beam = BeamSearch(tiny_rope_model)
        with pytest.raises(ValueError):
            beam.search(np.array([], dtype=np.int64))

    def test_length_penalty_changes_ranking_monotonically(self, tiny_rope_model, rng):
        prompt = rng.integers(0, 64, size=10)
        result = BeamSearch(tiny_rope_model, make_policy("full")).search(
            prompt, GenerationConfig(max_new_tokens=5, beam_size=3, length_penalty=2.0)
        )
        for hypothesis in result.hypotheses:
            expected = hypothesis.raw_score / max(len(hypothesis.tokens), 1) ** 2.0
            np.testing.assert_allclose(hypothesis.normalized_score, expected, atol=1e-12)

    def test_single_token_budget_returns_top_first_tokens(self, tiny_rope_model, rng):
        """max_new_tokens=1: hypotheses are the beam_size best first tokens,
        scored by their prompt-logits log-probabilities (no decode step)."""
        prompt = rng.integers(0, 64, size=10)
        result = BeamSearch(tiny_rope_model, make_policy("full")).search(
            prompt, GenerationConfig(max_new_tokens=1, beam_size=3)
        )
        assert result.n_steps == 0
        assert all(len(h.tokens) == 1 for h in result.hypotheses)
        logits = tiny_rope_model(np.asarray(prompt)[None, :])[0, -1]
        expected_best = int(np.argmax(logits))
        assert result.best.tokens == [expected_best]

    def test_eos_as_best_first_token_finishes_immediately(self, tiny_rope_model, rng):
        """EOS at the very first position must yield a finished one-token
        hypothesis instead of decoding past it (the speculative drafter's
        EOS-at-first-draft case leans on the same convention)."""
        prompt = rng.integers(0, 64, size=10)
        logits = tiny_rope_model(np.asarray(prompt)[None, :])[0, -1]
        eos = int(np.argmax(logits))
        result = BeamSearch(tiny_rope_model, make_policy("full")).search(
            prompt, GenerationConfig(max_new_tokens=6, beam_size=2, eos_token_id=eos)
        )
        assert [eos] in [h.tokens for h in result.hypotheses]
        assert all(
            h.tokens.count(eos) == 0 or h.tokens[-1] == eos for h in result.hypotheses
        )
