"""Tests for the Generator: prompt phase, decode loop, scoring, perplexity."""

import numpy as np
import pytest

from repro.core.registry import make_policy
from repro.generation.generator import Generator
from repro.models.config import GenerationConfig
from repro.models.tensor_ops import log_softmax
from repro.models.transformer import DecoderLM
from tests.conftest import tiny_config


class TestFullCacheEquivalence:
    """With the full-attention policy, incremental decoding must match running
    the model once over the whole (prompt + generated) sequence."""

    @pytest.mark.parametrize("positional", ["rope", "alibi", "learned"])
    def test_incremental_matches_full_forward(self, positional, rng):
        model = DecoderLM(tiny_config(positional), seed=3)
        prompt = rng.integers(0, 64, size=10)
        generator = Generator(model, make_policy("full"))
        result = generator.generate(prompt, GenerationConfig(max_new_tokens=6))
        generated = result.sequences[0]

        # Greedy re-decoding with full forward passes must give the same tokens.
        sequence = list(prompt)
        for expected in generated:
            logits = model(np.asarray(sequence)[None, :])
            token = int(np.argmax(logits[0, -1]))
            assert token == expected
            sequence.append(token)

    def test_log_probs_match_full_forward(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=4)
        prompt = rng.integers(0, 64, size=8)
        generator = Generator(model, make_policy("full"))
        result = generator.generate(prompt, GenerationConfig(max_new_tokens=4))
        generated = result.sequences[0]

        sequence = list(prompt)
        expected_logprob = 0.0
        for token in generated:
            logits = model(np.asarray(sequence)[None, :])
            expected_logprob += float(log_softmax(logits[0, -1])[token])
            sequence.append(token)
        np.testing.assert_allclose(result.log_probs[0], expected_logprob, atol=1e-8)


class TestGenerationBehaviour:
    def test_generates_requested_tokens(self, tiny_rope_model, rng):
        generator = Generator(tiny_rope_model, make_policy("keyformer", kv_fraction=0.5))
        prompt = rng.integers(0, 64, size=20)
        result = generator.generate(prompt, GenerationConfig(max_new_tokens=7))
        assert len(result.sequences[0]) == 7
        assert result.n_steps == 6  # final token is not fed back

    def test_single_token_budget(self, tiny_rope_model, rng):
        """max_new_tokens=1 emits exactly the argmax of the prompt logits,
        with its log-probability and zero decode steps."""
        prompt = rng.integers(0, 64, size=12)
        generator = Generator(tiny_rope_model, make_policy("full"))
        result = generator.generate(prompt, GenerationConfig(max_new_tokens=1))
        logits = tiny_rope_model(np.asarray(prompt)[None, :])[0, -1]
        assert result.sequences[0] == [int(np.argmax(logits))]
        assert result.n_steps == 0
        expected = float(log_softmax(logits[None], axis=-1)[0, int(np.argmax(logits))])
        np.testing.assert_allclose(result.log_probs[0], expected, rtol=0, atol=0)

    def test_eos_as_first_token(self, tiny_rope_model, rng):
        """An immediate EOS is recorded (with its log-probability) and stops
        generation before any decode step."""
        prompt = rng.integers(0, 64, size=12)
        logits = tiny_rope_model(np.asarray(prompt)[None, :])[0, -1]
        eos = int(np.argmax(logits))
        generator = Generator(tiny_rope_model, make_policy("full"))
        result = generator.generate(
            prompt, GenerationConfig(max_new_tokens=10, eos_token_id=eos)
        )
        assert result.sequences[0] == [eos]
        assert result.n_steps == 0

    def test_eos_stops_early(self, tiny_rope_model, rng):
        generator = Generator(tiny_rope_model, make_policy("full"))
        prompt = rng.integers(0, 64, size=12)
        probe = generator.generate(prompt, GenerationConfig(max_new_tokens=3))
        eos = probe.sequences[0][1]  # force EOS to be the second generated token
        result = generator.generate(
            prompt, GenerationConfig(max_new_tokens=10, eos_token_id=eos)
        )
        assert len(result.sequences[0]) <= 2
        assert result.sequences[0][-1] == eos

    def test_batch_generation(self, tiny_rope_model, rng):
        generator = Generator(tiny_rope_model, make_policy("h2o", kv_fraction=0.5))
        prompts = rng.integers(0, 64, size=(3, 15))
        result = generator.generate(prompts, GenerationConfig(max_new_tokens=5))
        assert len(result.sequences) == 3
        assert all(len(seq) == 5 for seq in result.sequences)
        # Batched generation must match per-example generation.
        solo = Generator(tiny_rope_model, make_policy("h2o", kv_fraction=0.5))
        single = solo.generate(prompts[1], GenerationConfig(max_new_tokens=5))
        assert result.sequences[1] == single.sequences[0]

    def test_cache_stays_at_budget(self, tiny_rope_model, rng):
        generator = Generator(tiny_rope_model, make_policy("keyformer", kv_fraction=0.5))
        prompt = rng.integers(0, 64, size=30)
        result = generator.generate(prompt, GenerationConfig(max_new_tokens=8))
        assert result.cache_stats.peak_cache_length() <= 15 + 1

    def test_policy_description_attached(self, tiny_rope_model, rng):
        generator = Generator(tiny_rope_model, make_policy("window", kv_fraction=0.3))
        result = generator.generate(
            rng.integers(0, 64, size=10), GenerationConfig(max_new_tokens=3)
        )
        assert result.policy["policy"] == "window"

    def test_rejects_empty_prompt(self, tiny_rope_model):
        generator = Generator(tiny_rope_model)
        with pytest.raises(ValueError):
            generator.generate(np.zeros((1, 0), dtype=np.int64))

    def test_positional_mode_changes_reduced_cache_output(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=5)
        prompt = rng.integers(0, 64, size=24)
        config = GenerationConfig(max_new_tokens=6)
        original = Generator(
            model, make_policy("keyformer", kv_fraction=0.4, positional_mode="original", seed=0)
        ).generate(prompt, config)
        renumbered = Generator(
            model, make_policy("keyformer", kv_fraction=0.4, positional_mode="new", seed=0)
        ).generate(prompt, config)
        # The two positional treatments are genuinely different computations;
        # they may coincidentally agree on tokens but the cache positions differ.
        assert (
            original.cache_stats.peak_cache_length()
            == renumbered.cache_stats.peak_cache_length()
        )


class TestScoring:
    def test_score_continuation_matches_forward(self, rng):
        model = DecoderLM(tiny_config("alibi"), seed=6)
        prompt = rng.integers(0, 64, size=9)
        continuation = rng.integers(0, 64, size=4)
        generator = Generator(model, make_policy("full"))
        score = generator.score_continuation(prompt, continuation)

        sequence = list(prompt)
        expected = 0.0
        for token in continuation:
            logits = model(np.asarray(sequence)[None, :])
            expected += float(log_softmax(logits[0, -1])[token])
            sequence.append(int(token))
        np.testing.assert_allclose(score, expected, atol=1e-8)

    def test_score_continuation_requires_tokens(self, tiny_rope_model):
        generator = Generator(tiny_rope_model)
        with pytest.raises(ValueError):
            generator.score_continuation([1, 2, 3], [])

    def test_reduced_cache_changes_scores(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=7)
        prompt = rng.integers(0, 64, size=40)
        continuation = rng.integers(0, 64, size=5)
        full = Generator(model, make_policy("full")).score_continuation(prompt, continuation)
        reduced = Generator(model, make_policy("window", kv_fraction=0.2)).score_continuation(
            prompt, continuation
        )
        assert full != pytest.approx(reduced)

    def test_perplexity_positive_and_finite(self, tiny_rope_model, rng):
        generator = Generator(tiny_rope_model, make_policy("full"))
        ppl = generator.perplexity(rng.integers(0, 64, size=12))
        assert np.isfinite(ppl) and ppl > 0

    def test_perplexity_requires_two_tokens(self, tiny_rope_model):
        generator = Generator(tiny_rope_model)
        with pytest.raises(ValueError):
            generator.perplexity([5])
