"""Tests for the task pipelines (summarization, conversation, few-shot)."""

import pytest

from repro.core.registry import make_policy
from repro.data.registry import make_dataset
from repro.generation.pipeline import (
    ConversationPipeline,
    FewShotEvaluator,
    GenerationEvaluator,
    SummarizationPipeline,
)
from repro.models.transformer import DecoderLM
from tests.conftest import tiny_config


@pytest.fixture
def pipeline_model(tokenizer):
    config = tiny_config("alibi", vocab_size=tokenizer.vocab_size)
    return DecoderLM(config, seed=0)


class TestGenerationEvaluator:
    def test_report_structure(self, pipeline_model, tokenizer, small_summarization):
        evaluator = SummarizationPipeline(pipeline_model, tokenizer)
        report = evaluator.evaluate_dataset(
            small_summarization, policy=make_policy("window", kv_fraction=0.5), limit=2,
            max_new_tokens=6,
        )
        assert report.n_examples == 2
        assert set(report.rouge) == {"rouge1", "rouge2", "rougeL"}
        assert all(0.0 <= v <= 100.0 for v in report.rouge.values())
        assert len(report.candidates) == len(report.references) == 2
        assert report.policy["policy"] == "window"
        assert report.mean_cache_length > 0

    def test_score_accessor(self, pipeline_model, tokenizer, small_summarization):
        evaluator = SummarizationPipeline(pipeline_model, tokenizer)
        report = evaluator.evaluate_dataset(small_summarization, limit=1, max_new_tokens=4)
        assert report.score("rouge2") == report.rouge["rouge2"]

    def test_conversation_pipeline(self, pipeline_model, tokenizer, small_conversation):
        evaluator = ConversationPipeline(pipeline_model, tokenizer)
        report = evaluator.evaluate_dataset(
            small_conversation, policy=make_policy("h2o", kv_fraction=0.5), limit=2,
            max_new_tokens=6,
        )
        assert report.n_examples == 2

    def test_full_policy_used_by_default(self, pipeline_model, tokenizer, small_summarization):
        evaluator = GenerationEvaluator(pipeline_model, tokenizer)
        prompts = small_summarization.to_eval_prompts(tokenizer, limit=1)
        report = evaluator.evaluate(prompts, max_new_tokens=4)
        assert report.policy["policy"] == "full"


class TestFewShotEvaluator:
    def test_accuracy_bounds_and_structure(self, pipeline_model, tokenizer, world):
        task = make_dataset("copa-synthetic", world=world, n_examples=10, seed=5)
        items = task.evaluation_items(tokenizer, n_shots=0, limit=4)
        evaluator = FewShotEvaluator(pipeline_model, tokenizer)
        report = evaluator.evaluate_items(items, policy=make_policy("keyformer", kv_fraction=0.5))
        assert 0.0 <= report.accuracy <= 100.0
        assert report.n_items == 4
        assert report.task == "copa-synthetic"

    def test_empty_items_rejected(self, pipeline_model, tokenizer):
        evaluator = FewShotEvaluator(pipeline_model, tokenizer)
        with pytest.raises(ValueError):
            evaluator.evaluate_items([])

    def test_rigged_model_scores_perfectly(self, tokenizer, world, rng):
        """An oracle that always prefers the correct option token must get 100%."""

        class OracleGenerator:
            def __init__(self, answers):
                self.answers = answers
                self.calls = 0

            def score_continuation(self, prompt_ids, option_ids):
                # Give the correct option of the current item the best score.
                item_index = self.calls // 2
                option_index = self.calls % 2
                self.calls += 1
                return 0.0 if option_index == self.answers[item_index] else -10.0

        task = make_dataset("piqa-synthetic", world=world, n_examples=8, seed=3)
        items = task.evaluation_items(tokenizer, n_shots=0, limit=4)
        evaluator = FewShotEvaluator(None, tokenizer)
        oracle = OracleGenerator([item["answer_index"] for item in items])

        # Monkeypatch the internal generator factory via a tiny shim.
        import repro.generation.pipeline as pipeline_module

        original = pipeline_module.Generator
        pipeline_module.Generator = lambda model, policy: oracle
        try:
            report = evaluator.evaluate_items(items, normalize_by_length=False)
        finally:
            pipeline_module.Generator = original
        assert report.accuracy == 100.0
