"""Tests for next-token samplers."""

import numpy as np
import pytest

from repro.generation.sampler import GreedySampler, TopKSampler, make_sampler


class TestGreedy:
    def test_argmax(self):
        logits = np.array([[0.1, 5.0, 0.2], [3.0, 0.0, -1.0]])
        np.testing.assert_array_equal(GreedySampler()(logits), [1, 0])

    def test_accepts_1d(self):
        assert GreedySampler()(np.array([0.0, 2.0, 1.0])).tolist() == [1]


class TestTopK:
    def test_only_topk_tokens_sampled(self):
        logits = np.array([[10.0, 9.5, -50.0, -50.0, -50.0]])
        sampler = TopKSampler(top_k=2, seed=0)
        draws = {int(sampler(logits)[0]) for _ in range(50)}
        assert draws.issubset({0, 1})
        assert len(draws) == 2  # both plausible tokens appear

    def test_deterministic_with_seed(self):
        logits = np.random.default_rng(0).normal(size=(1, 20))
        a = TopKSampler(top_k=5, seed=42)
        b = TopKSampler(top_k=5, seed=42)
        assert [int(a(logits)[0]) for _ in range(10)] == [int(b(logits)[0]) for _ in range(10)]

    def test_low_temperature_approaches_greedy(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        sampler = TopKSampler(top_k=0, temperature=0.01, seed=1)
        assert all(int(sampler(logits)[0]) == 2 for _ in range(20))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TopKSampler(top_k=-1)
        with pytest.raises(ValueError):
            TopKSampler(temperature=0.0)


class TestFactory:
    def test_defaults_to_greedy(self):
        assert isinstance(make_sampler(), GreedySampler)

    def test_randomness_requested(self):
        assert isinstance(make_sampler(top_k=5), TopKSampler)
        assert isinstance(make_sampler(temperature=0.7), TopKSampler)

    def test_temperature_zero_is_greedy(self):
        """Temperature 0 is the conventional spelling of argmax decoding —
        the speculative engine's greedy-only check relies on it mapping to
        GreedySampler instead of raising."""
        assert isinstance(make_sampler(temperature=0.0), GreedySampler)
        assert isinstance(make_sampler(temperature=0.0, top_k=7), GreedySampler)

    def test_direct_topk_still_rejects_zero_temperature(self):
        # Only the factory interprets 0 as greedy; the sampler itself would
        # divide by it.
        with pytest.raises(ValueError):
            TopKSampler(temperature=0.0)


class TestTopKOne:
    def test_top_k_one_is_deterministic_argmax(self):
        logits = np.random.default_rng(2).normal(size=(1, 32))
        sampler = TopKSampler(top_k=1, seed=0)
        expected = int(np.argmax(logits))
        assert all(int(sampler(logits)[0]) == expected for _ in range(20))

    def test_top_k_one_batched_rows(self):
        logits = np.random.default_rng(3).normal(size=(4, 16))
        sampler = TopKSampler(top_k=1, seed=0)
        np.testing.assert_array_equal(sampler(logits), np.argmax(logits, axis=-1))
