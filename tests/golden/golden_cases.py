"""Golden generation cases shared by the equivalence tests and the pin script.

The cases cover every eviction-policy family the paper evaluates (full,
window, H2O, Keyformer) plus the positional variants that exercise distinct
decode-path code (RoPE original positions, RoPE renumbered positions, ALiBi,
learned absolute embeddings).  ``run_case`` executes one case end to end and
returns a JSON-serializable summary: generated token sequences, per-sequence
log-probabilities and cache statistics.

Pinning (done once, against the seed implementation):

    PYTHONPATH=src python tests/golden/golden_cases.py --pin

writes ``golden_generation.json`` next to this file.  The test module
``test_golden_generation.py`` then asserts that the current implementation
reproduces those outputs token for token.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import (
    FullAttentionPolicy,
    H2OPolicy,
    WindowAttentionPolicy,
)
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM

FIXTURE_PATH = Path(__file__).resolve().parent / "golden_generation.json"

PROMPT_LEN = 48
MAX_NEW_TOKENS = 24
VOCAB = 128


def _model_config(positional: str, **overrides) -> dict:
    cfg = dict(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional=positional,
    )
    cfg.update(overrides)
    return cfg


def _policy_for(case: dict):
    name = case["policy"]
    if name == "full":
        return FullAttentionPolicy()
    if name == "window":
        return WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5))
    if name == "h2o":
        return H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5))
    if name == "keyformer":
        return KeyformerPolicy(
            KeyformerConfig(
                kv_fraction=0.5, positional_mode=case.get("positional_mode", "original")
            )
        )
    raise KeyError(f"unknown golden policy {name!r}")


#: Every golden case: policy family x positional-encoding variant.
CASES: tuple[dict, ...] = (
    {"name": "full_rope", "policy": "full", "model": _model_config("rope")},
    {"name": "window_rope", "policy": "window", "model": _model_config("rope")},
    {"name": "h2o_rope", "policy": "h2o", "model": _model_config("rope")},
    {"name": "keyformer_rope", "policy": "keyformer", "model": _model_config("rope")},
    {
        "name": "keyformer_rope_newpos",
        "policy": "keyformer",
        "positional_mode": "new",
        "model": _model_config("rope"),
    },
    {
        "name": "keyformer_rope_partial",
        "policy": "keyformer",
        "model": _model_config("rope", rope_fraction=0.5),
    },
    {"name": "keyformer_alibi", "policy": "keyformer", "model": _model_config("alibi")},
    {"name": "h2o_learned", "policy": "h2o", "model": _model_config("learned")},
    {
        "name": "full_rope_batch2",
        "policy": "full",
        "batch_size": 2,
        "model": _model_config("rope"),
    },
)


def run_case(case: dict, compute_dtype: str | None = None) -> dict:
    """Execute one golden case and summarize its outputs."""
    model_kwargs = dict(case["model"])
    if compute_dtype is not None:
        model_kwargs["compute_dtype"] = compute_dtype
    model = DecoderLM(ModelConfig(**model_kwargs), seed=0)
    policy = _policy_for(case)
    generator = Generator(model, policy)

    batch_size = case.get("batch_size", 1)
    prompt = (
        np.random.default_rng(7)
        .integers(0, VOCAB, size=(batch_size, PROMPT_LEN))
        .astype(np.int64)
    )
    if batch_size == 1:
        prompt = prompt[0]

    config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
    result = generator.generate(prompt, config, sampler=GreedySampler())
    return {
        "sequences": [[int(t) for t in seq] for seq in result.sequences],
        "log_probs": [float(lp) for lp in result.log_probs],
        "n_steps": int(result.n_steps),
        "total_appended": int(result.cache_stats.total_appended),
        "total_evicted": int(result.cache_stats.total_evicted),
    }


def run_all(compute_dtype: str | None = None) -> dict:
    return {case["name"]: run_case(case, compute_dtype) for case in CASES}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pin", action="store_true", help="write the fixture file")
    args = parser.parse_args()
    results = run_all()
    if args.pin:
        FIXTURE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"pinned {len(results)} cases to {FIXTURE_PATH}")
    else:
        print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
