"""Golden equivalence tests for the slab/cached-rotation decode path.

``golden_generation.json`` was pinned by running ``golden_cases.py --pin``
against the *seed* implementation (concatenate-grown caches, per-step full
RoPE re-rotation, float64 everywhere).  These tests assert that the current
implementation reproduces those outputs **token for token** — including cache
statistics and (at float64) bit-identical sequence log-probabilities — for
every eviction-policy family and positional variant.

The float32 inference path is not bit-exact (it trades exact parity for
memory bandwidth and BLAS kernels); it is held to the documented tolerance:
identical greedy tokens on these cases and log-probabilities within 1e-2.
"""

import json

import numpy as np
import pytest

from golden_cases import CASES, FIXTURE_PATH, run_case

with FIXTURE_PATH.open() as fh:
    GOLDEN = json.load(fh)

CASE_IDS = [case["name"] for case in CASES]


@pytest.fixture(scope="module", params=CASES, ids=CASE_IDS)
def case(request):
    return request.param


class TestFloat64BitEquivalence:
    """The float64 path must be indistinguishable from the seed implementation."""

    @pytest.fixture(scope="class")
    def results(self):
        return {c["name"]: run_case(c) for c in CASES}

    def test_fixture_covers_all_cases(self):
        assert set(GOLDEN) == {c["name"] for c in CASES}

    @pytest.mark.parametrize("name", CASE_IDS)
    def test_sequences_identical(self, results, name):
        assert results[name]["sequences"] == GOLDEN[name]["sequences"]

    @pytest.mark.parametrize("name", CASE_IDS)
    def test_cache_stats_identical(self, results, name):
        for field in ("n_steps", "total_appended", "total_evicted"):
            assert results[name][field] == GOLDEN[name][field], field

    @pytest.mark.parametrize("name", CASE_IDS)
    def test_log_probs_bit_identical(self, results, name):
        np.testing.assert_array_equal(
            np.asarray(results[name]["log_probs"]),
            np.asarray(GOLDEN[name]["log_probs"]),
        )


class TestFloat32Tolerance:
    """The float32 inference path stays within the documented tolerance."""

    @pytest.mark.parametrize(
        "name", ["full_rope", "window_rope", "h2o_rope", "keyformer_rope"]
    )
    def test_float32_generation_matches_within_tolerance(self, name):
        case = next(c for c in CASES if c["name"] == name)
        result = run_case(case, compute_dtype="float32")
        assert result["sequences"] == GOLDEN[name]["sequences"]
        np.testing.assert_allclose(
            result["log_probs"], GOLDEN[name]["log_probs"], rtol=0, atol=1e-2
        )
