"""Golden pin: the paged serving engine reproduces the slab-era goldens.

``golden_generation.json`` was pinned against the seed implementation and has
been preserved bit-for-bit through the slab (PR 1) and batched-slab (PR 2)
storage generations.  These tests run the same golden cases through the
**paged** engine — with prefix sharing enabled (every case is submitted
twice, so the second request maps the first one's prompt pages) and, in a
second pass, under a deliberately tight fixed pool that forces preemption —
and assert the outputs still match the pinned fixtures exactly.  This is the
"paged == slab" bit-equivalence pin: pages, sharing and preemption are
storage/scheduling artifacts that must never leak into generated tokens or
log-probabilities.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from golden_cases import CASES, FIXTURE_PATH, MAX_NEW_TOKENS, PROMPT_LEN, VOCAB, _policy_for
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine

with FIXTURE_PATH.open() as fh:
    GOLDEN = json.load(fh)

#: Single-sequence cases (the engine serves one request per row; the batch-2
#: golden is covered by the solo golden suite and the serving equivalence
#: tests).
ENGINE_CASES = [case for case in CASES if case.get("batch_size", 1) == 1]
CASE_IDS = [case["name"] for case in ENGINE_CASES]


def _run_engine_case(case: dict, max_pool_tokens: int | None) -> list[dict]:
    model = DecoderLM(ModelConfig(**case["model"]), seed=0)
    engine = ContinuousBatchingEngine(
        model,
        policy_factory=lambda: _policy_for(case),
        positional_mode=case.get("positional_mode"),
        max_batch_size=2,
        max_pool_tokens=max_pool_tokens,
    )
    prompt = (
        np.random.default_rng(7).integers(0, VOCAB, size=(1, PROMPT_LEN)).astype(np.int64)
    )
    config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
    # Two identical requests: the second maps the first one's prompt pages
    # whenever the policy permits prefix sharing.
    states = [
        engine.submit(prompt[0], config, sampler=GreedySampler()) for _ in range(2)
    ]
    engine.run()
    return [
        {
            "sequences": [state.tokens],
            "log_probs": state.result().log_probs,
            "n_steps": state.n_steps,
            "total_appended": state.cache_stats.total_appended,
            "total_evicted": state.cache_stats.total_evicted,
        }
        for state in states
    ]


@pytest.mark.parametrize("case", ENGINE_CASES, ids=CASE_IDS)
def test_paged_engine_with_sharing_matches_golden(case):
    golden = GOLDEN[case["name"]]
    for result in _run_engine_case(case, max_pool_tokens=None):
        assert result["sequences"] == golden["sequences"]
        np.testing.assert_array_equal(
            np.asarray(result["log_probs"]), np.asarray(golden["log_probs"])
        )
        assert result["n_steps"] == golden["n_steps"]
        assert result["total_appended"] == golden["total_appended"]
        assert result["total_evicted"] == golden["total_evicted"]


@pytest.mark.parametrize(
    "case",
    [c for c in ENGINE_CASES if c["name"] in ("full_rope", "keyformer_alibi")],
    ids=["full_rope", "keyformer_alibi"],
)
def test_paged_engine_under_pool_pressure_matches_golden(case):
    """A pool too small for two concurrent full-attention requests forces the
    memory-aware scheduler to serialize or preempt — tokens must not change."""
    golden = GOLDEN[case["name"]]
    for result in _run_engine_case(case, max_pool_tokens=112):
        assert result["sequences"] == golden["sequences"]
        np.testing.assert_array_equal(
            np.asarray(result["log_probs"]), np.asarray(golden["log_probs"])
        )
