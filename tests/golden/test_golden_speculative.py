"""Golden pin: greedy speculative decoding reproduces vanilla greedy decode.

Speculative decoding's whole contract is that the drafter can only change
*how fast* tokens are produced, never *which* tokens: greedy verification
recomputes the target's own logits bit-exactly, so the output must equal the
full-attention golden fixtures pinned against the seed implementation —
token for token and log-probability for log-probability — no matter which
drafter proposes (window, H2O, Keyformer self-drafting, a full-attention
self-draft, or the model-free n-gram lookup).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from golden_cases import FIXTURE_PATH, MAX_NEW_TOKENS, PROMPT_LEN, VOCAB, _model_config
from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import FullAttentionPolicy, H2OPolicy
from repro.models.config import GenerationConfig, ModelConfig
from repro.speculative import SpeculationConfig, SpeculativeGenerator

with FIXTURE_PATH.open() as fh:
    GOLDEN = json.load(fh)

#: Every drafter family the issue's acceptance criterion names, plus the
#: n-gram drafter.  All must reproduce the *full-attention* golden case —
#: the target policy — exactly.
DRAFTER_CONFIGS = {
    "full": SpeculationConfig(k=4, drafter="policy", drafter_policy_factory=FullAttentionPolicy),
    "window": SpeculationConfig(k=4, drafter="window", kv_fraction=0.5),
    "h2o": SpeculationConfig(
        k=3,
        drafter="policy",
        drafter_policy_factory=lambda: H2OPolicy(
            CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5)
        ),
    ),
    "keyformer": SpeculationConfig(
        k=5,
        drafter="policy",
        drafter_policy_factory=lambda: KeyformerPolicy(KeyformerConfig(kv_fraction=0.5)),
    ),
    "ngram": SpeculationConfig(k=4, drafter="ngram"),
}


def _case_model():
    from repro.models.transformer import DecoderLM

    return DecoderLM(ModelConfig(**_model_config("rope")), seed=0)


@pytest.mark.parametrize("drafter", sorted(DRAFTER_CONFIGS))
def test_speculative_matches_full_attention_golden(drafter):
    model = _case_model()
    generator = SpeculativeGenerator(model, DRAFTER_CONFIGS[drafter])
    prompt = (
        np.random.default_rng(7).integers(0, VOCAB, size=(1, PROMPT_LEN)).astype(np.int64)
    )
    result = generator.generate(prompt[0], GenerationConfig(max_new_tokens=MAX_NEW_TOKENS))
    golden = GOLDEN["full_rope"]
    assert [[int(t) for t in seq] for seq in result.sequences] == golden["sequences"]
    np.testing.assert_array_equal(
        np.asarray(result.log_probs), np.asarray(golden["log_probs"])
    )
    # Telemetry sanity: every token after the first (which comes from the
    # prompt logits, before any round) was committed by a verify round.
    assert result.speculation["committed"] == len(result.sequences[0]) - 1
    assert result.speculation["rounds"] >= 1
