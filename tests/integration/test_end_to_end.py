"""End-to-end integration tests: data → training → generation → metrics.

These tests use the briefly-trained tiny model from ``conftest`` and exercise
the same code path as the paper's evaluation: prompt processing with a cache
policy, token generation with per-step eviction, and ROUGE scoring.
"""

import pytest

from repro.core.registry import POLICIES, make_policy
from repro.generation.generator import Generator
from repro.generation.pipeline import SummarizationPipeline
from repro.models.config import GenerationConfig


class TestPolicyEquivalences:
    def test_keyformer_with_full_budget_matches_full_attention(
        self, trained_tiny_model, tokenizer, small_summarization
    ):
        """With kv_fraction = 1.0 no token is ever evicted, so Keyformer must
        generate exactly what full attention generates."""
        prompt_ids, _ = small_summarization.to_eval_prompts(tokenizer, limit=1)[0]
        config = GenerationConfig(max_new_tokens=8, eos_token_id=tokenizer.vocab.eos_id)
        full = Generator(trained_tiny_model, make_policy("full")).generate(prompt_ids, config)
        keyformer = Generator(
            trained_tiny_model, make_policy("keyformer", kv_fraction=1.0)
        ).generate(prompt_ids, config)
        assert full.sequences[0] == keyformer.sequences[0]

    def test_h2o_with_full_budget_matches_full_attention(
        self, trained_tiny_model, tokenizer, small_summarization
    ):
        prompt_ids, _ = small_summarization.to_eval_prompts(tokenizer, limit=1)[0]
        config = GenerationConfig(max_new_tokens=8, eos_token_id=tokenizer.vocab.eos_id)
        full = Generator(trained_tiny_model, make_policy("full")).generate(prompt_ids, config)
        h2o = Generator(trained_tiny_model, make_policy("h2o", kv_fraction=1.0)).generate(
            prompt_ids, config
        )
        assert full.sequences[0] == h2o.sequences[0]


class TestAllPoliciesEndToEnd:
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_generation_under_every_policy(
        self, policy_name, trained_tiny_model, tokenizer, small_summarization
    ):
        prompt_ids, reference = small_summarization.to_eval_prompts(tokenizer, limit=1)[0]
        policy = make_policy(policy_name, kv_fraction=0.5)
        generator = Generator(trained_tiny_model, policy)
        result = generator.generate(
            prompt_ids, GenerationConfig(max_new_tokens=10, eos_token_id=tokenizer.vocab.eos_id)
        )
        text = tokenizer.decode(result.sequences[0])
        assert isinstance(text, str)
        assert result.cache_stats.n_steps >= 0
        if policy_name != "full":
            budget = policy.config.resolve_budget(len(prompt_ids))
            assert result.cache_stats.peak_cache_length() <= budget + 1

    def test_trained_model_reproduces_fact_structure(
        self, trained_tiny_model, tokenizer, small_summarization
    ):
        """The briefly trained model should emit summary-like text (entity /
        relation tokens), demonstrating the synthetic task is learnable."""
        pipeline = SummarizationPipeline(trained_tiny_model, tokenizer)
        report = pipeline.evaluate_dataset(small_summarization, limit=4)
        assert report.rouge["rouge1"] > 5.0

    def test_reduced_cache_quality_ordering_is_sane(
        self, trained_tiny_model, tokenizer, small_summarization
    ):
        """Mixed key+recent policies must not be catastrophically worse than
        full attention at a 70% budget (weak, non-flaky form of Figure 7)."""
        pipeline = SummarizationPipeline(trained_tiny_model, tokenizer)
        full = pipeline.evaluate_dataset(small_summarization, limit=4)
        keyformer = pipeline.evaluate_dataset(
            small_summarization, policy=make_policy("keyformer", kv_fraction=0.7), limit=4
        )
        h2o = pipeline.evaluate_dataset(
            small_summarization, policy=make_policy("h2o", kv_fraction=0.7), limit=4
        )
        assert keyformer.rouge["rouge1"] >= 0.3 * full.rouge["rouge1"]
        assert h2o.rouge["rouge1"] >= 0.3 * full.rouge["rouge1"]

    def test_cache_budget_respected_across_long_generation(
        self, trained_tiny_model, tokenizer, small_summarization
    ):
        prompt_ids, _ = small_summarization.to_eval_prompts(tokenizer, limit=1)[0]
        policy = make_policy("keyformer", kv_fraction=0.3)
        generator = Generator(trained_tiny_model, policy)
        result = generator.generate(prompt_ids, GenerationConfig(max_new_tokens=30))
        budget = policy.config.resolve_budget(len(prompt_ids))
        assert result.cache_stats.peak_cache_length() == budget + 1
        assert result.cache_stats.eviction_rate() > 0.0

    def test_fewshot_scoring_end_to_end(self, trained_tiny_model, tokenizer, world):
        from repro.data.fewshot import FewShotConfig, make_fewshot_task
        from repro.generation.pipeline import FewShotEvaluator

        task = make_fewshot_task("copa-synthetic", world, FewShotConfig(n_examples=10, seed=2))
        items = task.evaluation_items(tokenizer, n_shots=2, limit=3)
        evaluator = FewShotEvaluator(trained_tiny_model, tokenizer)
        report = evaluator.evaluate_items(items, policy=make_policy("keyformer", kv_fraction=0.5))
        assert report.n_shots == 2
        assert 0.0 <= report.accuracy <= 100.0
