"""Property tests for `repro.kvcache.admission` (sketch + W-TinyLFU SLRU).

Covers the count-min sketch's never-under-count and conservative-update
guarantees, exact aging semantics, the SLRU segment invariants under random
access streams, and the registry-level parent-chain reclaim guard the
admission path must never violate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.admission import (
    ADMISSION_POLICIES,
    FrequencySketch,
    WTinyLFUAdmissionPolicy,
    resolve_admission_policy,
)
from repro.kvcache.paged import (
    PagedKVStore,
    PageTable,
    PoolIntegrityError,
    PrefixRegistry,
)

H, D, PS = 2, 4, 8

_KEYS = st.integers(min_value=0, max_value=63)
_STREAMS = st.lists(_KEYS, min_size=1, max_size=200)


class TestFrequencySketch:
    @settings(max_examples=40, deadline=None)
    @given(stream=_STREAMS)
    def test_never_under_counts(self, stream):
        """Without aging, estimate(k) >= true count of k, for every k."""
        sketch = FrequencySketch(width=64, depth=4, sample_size=None)
        for key in stream:
            sketch.record(key)
        for key in set(stream):
            assert sketch.estimate(key) >= stream.count(key)

    @settings(max_examples=40, deadline=None)
    @given(stream=_STREAMS)
    def test_conservative_pointwise_below_plain(self, stream):
        """Conservative update never exceeds the plain update, anywhere."""
        cons = FrequencySketch(width=64, depth=4, sample_size=None, conservative=True)
        plain = FrequencySketch(width=64, depth=4, sample_size=None, conservative=False)
        for key in stream:
            cons.record(key)
            plain.record(key)
        assert np.all(cons.counters() <= plain.counters())
        # Conservative update still never under-counts.
        for key in set(stream):
            assert cons.estimate(key) >= stream.count(key)

    @settings(max_examples=30, deadline=None)
    @given(stream=st.lists(_KEYS, min_size=1, max_size=120), sample=st.integers(5, 25))
    def test_aging_halves_once_per_threshold_crossing(self, stream, sample):
        """Every `sample` increments trigger exactly one halving pass."""
        sketch = FrequencySketch(width=64, depth=4, sample_size=sample)
        for i, key in enumerate(stream, start=1):
            before = sketch.counters()
            agings_before = sketch.n_agings
            sketch.record(key)
            if i % sample == 0:
                assert sketch.n_agings == agings_before + 1
                assert sketch.ops_since_aging == 0
            else:
                assert sketch.n_agings == agings_before
                assert sketch.ops_since_aging == i % sample
        assert sketch.n_agings == len(stream) // sample
        assert sketch.n_increments == len(stream)
        # `before` is from the last pre-record snapshot; re-derive the exact
        # final table from scratch to pin the halving arithmetic.
        del before
        replay = FrequencySketch(width=64, depth=4, sample_size=None)
        shadow = np.zeros_like(replay.counters())
        for i, key in enumerate(stream, start=1):
            idxs = replay._indexes(key)
            floor = min(int(shadow[row, idx]) for row, idx in enumerate(idxs))
            if floor < 255:
                for row, idx in enumerate(idxs):
                    if shadow[row, idx] == floor:
                        shadow[row, idx] = floor + 1
            if i % sample == 0:
                shadow >>= 1
        assert np.array_equal(sketch.counters(), shadow)

    def test_aging_halves_hot_counter_exactly(self):
        sketch = FrequencySketch(width=64, depth=4, sample_size=10)
        for _ in range(9):
            sketch.record(7)
        assert sketch.estimate(7) == 9
        sketch.record(7)  # 10th increment crosses the threshold
        assert sketch.n_agings == 1
        assert sketch.estimate(7) == 5  # 10 >> 1
        assert sketch.ops_since_aging == 0

    def test_counter_saturation_cap(self):
        sketch = FrequencySketch(width=64, depth=2, sample_size=None)
        for _ in range(300):
            sketch.record(1)
        assert sketch.estimate(1) == 255

    def test_width_rounds_up_to_power_of_two(self):
        assert FrequencySketch(width=1).width == 64
        assert FrequencySketch(width=100).width == 128

    def test_bytes_and_int_keys_are_process_stable(self):
        sketch = FrequencySketch(width=64, sample_size=None)
        key = bytes(range(16))
        sketch.record(key)
        assert sketch.estimate(key) >= 1
        assert FrequencySketch(width=64)._indexes(key) == sketch._indexes(key)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            FrequencySketch(depth=0)
        with pytest.raises(ValueError):
            FrequencySketch(sample_size=0)


def _apply_ops(policy, ops):
    """Drive a policy through an op stream, maintaining the tracked shadow set.

    Ops are (kind, key) pairs: 0=insert, 1=access, 2=drop, 3=choose_victim
    over the full tracked set.  Returns the shadow tracked set.
    """
    tracked: set = set()
    for kind, key in ops:
        if kind == 0:
            policy.on_insert(key)
            tracked.add(key)
        elif kind == 1 and tracked:
            key = sorted(tracked)[key % len(tracked)]
            policy.on_access(key)
        elif kind == 2 and tracked:
            key = sorted(tracked)[key % len(tracked)]
            policy.on_drop(key)
            tracked.discard(key)
        elif kind == 3 and tracked:
            victim = policy.choose_victim(sorted(tracked))
            policy.on_drop(victim)
            tracked.discard(victim)
    return tracked


class TestSLRUInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 30)), min_size=1, max_size=120
        ),
        capacity=st.integers(4, 24),
    )
    def test_segments_stay_invariant_under_random_streams(self, ops, capacity):
        """Disjoint segments, capacity bounds, tracked-set consistency."""
        policy = WTinyLFUAdmissionPolicy(capacity=capacity)
        tracked = _apply_ops(policy, ops)
        assert policy.audit(tracked) == []
        segs = policy.segments()
        all_keys = segs["window"] + segs["probation"] + segs["protected"]
        assert len(all_keys) == len(set(all_keys))  # no key in two segments
        assert set(all_keys) == tracked
        assert len(segs["window"]) <= policy.window_cap
        assert len(segs["protected"]) <= policy.protected_cap
        assert len(policy) == len(tracked)

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 30)), min_size=1, max_size=80
        )
    )
    def test_choose_victim_always_returns_eligible(self, ops):
        policy = WTinyLFUAdmissionPolicy(capacity=8)
        tracked = _apply_ops(policy, ops)
        if tracked:
            eligible = sorted(tracked)
            victim = policy.choose_victim(eligible)
            assert victim in eligible

    def test_window_spills_lru_to_probation(self):
        policy = WTinyLFUAdmissionPolicy(capacity=10)  # window_cap 2
        for key in (1, 2, 3):
            policy.on_insert(key)
        assert policy.segment_of(1) == "probation"  # oldest spilled
        assert policy.segments()["window"] == [2, 3]

    def test_access_promotes_window_probation_protected(self):
        policy = WTinyLFUAdmissionPolicy(capacity=10)
        policy.on_insert(1)
        assert policy.segment_of(1) == "window"
        policy.on_access(1)
        assert policy.segment_of(1) == "probation"
        policy.on_access(1)
        assert policy.segment_of(1) == "protected"
        policy.on_access(1)  # protected hit only refreshes recency
        assert policy.segment_of(1) == "protected"

    def test_protected_overflow_demotes_lru_to_probation_mru(self):
        policy = WTinyLFUAdmissionPolicy(capacity=4)  # window 1, protected 2
        for key in (1, 2, 3):
            policy.on_insert(key)
            policy.on_access(key)  # window -> probation
            policy.on_access(key)  # probation -> protected
        # Protected cap is 2: promoting 3 demoted the protected LRU (1) back
        # to probation's MRU end.
        assert policy.segments()["protected"] == [2, 3]
        assert policy.segment_of(1) == "probation"

    def test_competitive_admission_prefers_frequent_candidate(self):
        policy = WTinyLFUAdmissionPolicy(
            capacity=8, sketch=FrequencySketch(width=64, sample_size=None)
        )
        cold, hot = b"cold-chunk-key\x00\x01", b"hot-chunk-key\x00\x02"
        policy.on_insert(cold)
        policy.on_access(cold)  # cold sits in probation, frequency 2
        policy.on_insert(hot)
        for _ in range(4):
            policy.sketch.record(hot)  # hot is sketched far above cold
        victim = policy.choose_victim([cold, hot])
        assert victim == cold  # hot admitted at cold's expense
        assert policy.segment_of(hot) == "probation"
        assert policy.n_admitted == 1

    def test_infrequent_candidate_is_rejected(self):
        policy = WTinyLFUAdmissionPolicy(
            capacity=8, sketch=FrequencySketch(width=64, sample_size=None)
        )
        resident, scan = b"resident-key\x00\x03", b"scan-key\x00\x04"
        policy.on_insert(resident)
        policy.on_access(resident)
        policy.on_insert(scan)
        victim = policy.choose_victim([resident, scan])
        assert victim == scan  # ties never dislodge the incumbent
        assert policy.n_rejected == 1

    def test_choose_victim_empty_raises(self):
        with pytest.raises(ValueError):
            WTinyLFUAdmissionPolicy(capacity=4).choose_victim([])

    def test_audit_flags_stale_and_missing_keys(self):
        policy = WTinyLFUAdmissionPolicy(capacity=8)
        policy.on_insert(1)
        assert any("no segment" in v for v in policy.audit({1, 2}))
        assert any("stale" in v for v in policy.audit(set()))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            WTinyLFUAdmissionPolicy(capacity=0)
        with pytest.raises(ValueError):
            WTinyLFUAdmissionPolicy(window_fraction=1.5)
        with pytest.raises(ValueError):
            WTinyLFUAdmissionPolicy(protected_fraction=0.0)


class TestResolveAdmissionPolicy:
    def test_lru_and_none_resolve_to_no_policy(self):
        assert resolve_admission_policy(None, 16) is None
        assert resolve_admission_policy("lru", 16) is None

    def test_wtinylfu_resolves_sized_policy(self):
        policy = resolve_admission_policy("wtinylfu", 16)
        assert isinstance(policy, WTinyLFUAdmissionPolicy)
        assert policy.capacity == 16

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="admission_policy"):
            resolve_admission_policy("fifo", 16)
        assert ADMISSION_POLICIES == ("lru", "wtinylfu")


class TestRegistryChainSafety:
    """Reclaim ordering vs. parent chains — explicit guard, not luck."""

    def _registry(self, admission_policy):
        store = PagedKVStore(
            2, H, D, page_size=PS, n_pages=16, growable=True,
            admission_policy=admission_policy,
        )
        return store, PrefixRegistry(store)

    def _seed(self, store, tokens, rng):
        tables = []
        for pool in store.pools:
            table = PageTable()
            keys = rng.normal(size=(H, len(tokens), D))
            pos = np.broadcast_to(np.arange(len(tokens)), (H, len(tokens))).copy()
            pool.extend(table, keys, keys.copy(), pos)
            tables.append(table)
        return tables

    @pytest.mark.parametrize("policy", ADMISSION_POLICIES)
    def test_drop_refuses_parent_with_live_children(self, policy):
        rng = np.random.default_rng(3)
        store, registry = self._registry(policy)
        tokens = rng.integers(0, 50, size=3 * PS)
        registry.register(tokens, self._seed(store, tokens, rng))
        chunks = list(registry._chunks.values())
        parent = next(c for c in chunks if c.children)
        with pytest.raises(PoolIntegrityError, match="live descendant"):
            registry._drop(parent)
        assert registry.audit() == []

    @pytest.mark.parametrize("policy", ADMISSION_POLICIES)
    def test_audit_detects_broken_parent_chain(self, policy):
        rng = np.random.default_rng(4)
        store, registry = self._registry(policy)
        tokens = rng.integers(0, 50, size=2 * PS)
        registry.register(tokens, self._seed(store, tokens, rng))
        assert registry.audit() == []
        # Corrupt the chain the way the latent bug class would: the parent
        # vanishes while the child stays registered.
        parent_key = next(
            c.key for c in registry._chunks.values() if c.children
        )
        del registry._chunks[parent_key]
        violations = registry.audit()
        assert any("parent" in v and "reclaimed" in v for v in violations)

    @pytest.mark.parametrize("policy", ADMISSION_POLICIES)
    def test_reclaim_drops_leaves_before_parents(self, policy):
        rng = np.random.default_rng(5)
        store, registry = self._registry(policy)
        tokens = rng.integers(0, 50, size=4 * PS)
        tables = self._seed(store, tokens, rng)
        registry.register(tokens, tables)
        for table, pool in zip(tables, store.pools):
            pool.release_table(table)
        while len(registry):
            depths = {c.key: c for c in registry._chunks.values()}
            registry.reclaim(1)
            # Whatever was dropped, every survivor's chain must be intact.
            assert registry.audit() == []
            assert len(registry) < len(depths)
        assert store.pools[0].free_pages == store.pools[0].n_pages
