"""Unit tests for the batched slab KV cache (`repro.kvcache.batch`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvcache.batch import BatchedLayerKVCache
from repro.kvcache.cache import LayerKVCache

HEADS, D_HEAD = 4, 8


def _prompt(rng, t):
    keys = rng.normal(size=(1, HEADS, t, D_HEAD))
    values = rng.normal(size=(1, HEADS, t, D_HEAD))
    positions = np.broadcast_to(np.arange(t), (1, HEADS, t))
    return keys, values, positions


def _row_matches_reference(batched: BatchedLayerKVCache, row: int, ref: LayerKVCache):
    start = int(batched.starts[row])
    stop = start + int(batched.lengths[row])
    assert int(batched.lengths[row]) == ref.length
    np.testing.assert_array_equal(batched._k[row, :, start:stop], ref.keys[0])
    np.testing.assert_array_equal(batched._v[row, :, start:stop], ref.values[0])
    np.testing.assert_array_equal(batched._pos[row, :, start:stop], ref.positions[0])


class TestBatchedLayerKVCache:
    def test_join_append_matches_single_sequence_cache(self):
        rng = np.random.default_rng(0)
        batched = BatchedLayerKVCache(max_batch=3, n_heads=HEADS, d_head=D_HEAD)
        refs = []
        for row, t in enumerate((6, 4, 9)):
            keys, values, positions = _prompt(rng, t)
            batched.ensure_capacity(t + 4)
            batched.join_row(row, keys, values, positions)
            refs.append(LayerKVCache.from_prompt(keys, values))
        for step in range(3):
            k = rng.normal(size=(3, HEADS, D_HEAD))
            v = rng.normal(size=(3, HEADS, D_HEAD))
            positions = np.asarray([6 + step, 4 + step, 9 + step])
            batched.append_rows(3, k, v, positions)
            for row, ref in enumerate(refs):
                ref.append(k[row : row + 1], v[row : row + 1], int(positions[row]))
        for row, ref in enumerate(refs):
            _row_matches_reference(batched, row, ref)

    def test_suffix_gather_is_pointer_bump(self):
        rng = np.random.default_rng(1)
        batched = BatchedLayerKVCache(max_batch=1, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 10)
        batched.join_row(0, keys, values, positions)
        ref = LayerKVCache.from_prompt(keys, values)
        suffix = np.broadcast_to(np.arange(3, 10), (1, HEADS, 7))
        evicted = batched.gather_row(0, suffix)
        ref.gather(suffix)
        assert evicted == 3
        assert int(batched.starts[0]) == 3  # pointer bump, no compaction
        _row_matches_reference(batched, 0, ref)

    def test_scattered_gather_matches_reference(self):
        rng = np.random.default_rng(2)
        batched = BatchedLayerKVCache(max_batch=1, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 12)
        batched.join_row(0, keys, values, positions)
        ref = LayerKVCache.from_prompt(keys, values)
        selection = np.sort(
            np.stack([rng.choice(12, size=6, replace=False) for _ in range(HEADS)])[
                None
            ],
            axis=-1,
        )
        batched.gather_row(0, selection)
        ref.gather(selection)
        _row_matches_reference(batched, 0, ref)

    def test_gather_after_suffix_shift_uses_relative_indices(self):
        rng = np.random.default_rng(3)
        batched = BatchedLayerKVCache(max_batch=1, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 10)
        batched.join_row(0, keys, values, positions)
        ref = LayerKVCache.from_prompt(keys, values)
        suffix = np.broadcast_to(np.arange(2, 10), (1, HEADS, 8))
        batched.gather_row(0, suffix)
        ref.gather(suffix)
        scattered = np.sort(
            np.stack([rng.choice(8, size=4, replace=False) for _ in range(HEADS)])[
                None
            ],
            axis=-1,
        )
        batched.gather_row(0, scattered)
        ref.gather(scattered)
        _row_matches_reference(batched, 0, ref)

    def test_gather_rejects_out_of_range(self):
        rng = np.random.default_rng(4)
        batched = BatchedLayerKVCache(max_batch=1, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 5)
        batched.join_row(0, keys, values, positions)
        with pytest.raises(IndexError):
            batched.gather_row(0, np.full((1, HEADS, 2), 7))

    def test_free_row_moves_last_row(self):
        rng = np.random.default_rng(5)
        batched = BatchedLayerKVCache(max_batch=3, n_heads=HEADS, d_head=D_HEAD)
        refs = []
        for row, t in enumerate((5, 7, 6)):
            keys, values, positions = _prompt(rng, t)
            batched.join_row(row, keys, values, positions)
            refs.append(LayerKVCache.from_prompt(keys, values))
        batched.free_row(0, 2)  # retire row 0; row 2 moves into it
        _row_matches_reference(batched, 0, refs[2])
        _row_matches_reference(batched, 1, refs[1])
        assert int(batched.lengths[2]) == 0

    def test_padded_views_realign_divergent_starts(self):
        rng = np.random.default_rng(6)
        batched = BatchedLayerKVCache(max_batch=2, n_heads=HEADS, d_head=D_HEAD)
        contents = []
        for row in range(2):
            keys, values, positions = _prompt(rng, 8)
            batched.join_row(row, keys, values, positions)
            contents.append((keys, values))
        # Row 0 suffix-evicts (start moves); row 1 stays put → divergence.
        batched.gather_row(0, np.broadcast_to(np.arange(3, 8), (1, HEADS, 5)))
        assert int(batched.starts[0]) != int(batched.starts[1])
        keys_view, values_view, pos_view, max_len = batched.padded_views(2)
        assert max_len == 8
        assert int(batched.starts[0]) == int(batched.starts[1])
        np.testing.assert_array_equal(keys_view[0, :, :5], contents[0][0][0, :, 3:])
        np.testing.assert_array_equal(keys_view[1], contents[1][0][0])
        np.testing.assert_array_equal(pos_view[1, 0], np.arange(8))

    def test_rotated_slab_matches_single_sequence_rotation(self):
        rng = np.random.default_rng(7)
        rope_dims = D_HEAD
        batched = BatchedLayerKVCache(
            max_batch=2, n_heads=HEADS, d_head=D_HEAD, rope_dims=rope_dims
        )
        refs = []
        for row, t in enumerate((6, 4)):
            keys, values, positions = _prompt(rng, t)
            batched.join_row(row, keys, values, positions)
            refs.append(
                LayerKVCache.from_prompt(keys, values, rope_dims=rope_dims)
            )
        k = rng.normal(size=(2, HEADS, D_HEAD))
        batched.append_rows(2, k, k.copy(), np.asarray([6, 4]))
        for row, ref in enumerate(refs):
            ref.append(k[row : row + 1], k[row : row + 1].copy(), (6, 4)[row])
        _, _, _, max_len = batched.padded_views(2)
        rotated = batched.rotated_padded(2, max_len)
        for row, ref in enumerate(refs):
            length = int(batched.lengths[row])
            np.testing.assert_array_equal(
                rotated[row, :, :length], ref.rotated_keys()[0]
            )

    def test_capacity_grows_preserving_contents(self):
        rng = np.random.default_rng(8)
        batched = BatchedLayerKVCache(
            max_batch=1, n_heads=HEADS, d_head=D_HEAD, capacity=16
        )
        keys, values, positions = _prompt(rng, 10)
        batched.join_row(0, keys, values, positions)
        ref = LayerKVCache.from_prompt(keys, values)
        for step in range(20):  # forces at least one grow
            k = rng.normal(size=(1, HEADS, D_HEAD))
            batched.append_rows(1, k, k.copy(), np.asarray([10 + step]))
            ref.append(k[0:1], k[0:1].copy(), 10 + step)
        assert batched.capacity >= 30
        _row_matches_reference(batched, 0, ref)
