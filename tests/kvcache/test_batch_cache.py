"""Unit tests for the batched paged KV cache (`repro.kvcache.batch`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CachePolicyConfig
from repro.core.policies import H2OPolicy
from repro.kvcache.batch import BatchedCacheManager, BatchedLayerKVCache
from repro.kvcache.cache import LayerKVCache
from repro.kvcache.paged import PoolExhausted
from repro.models.tensor_ops import softmax

HEADS, D_HEAD = 4, 8


def _prompt(rng, t):
    keys = rng.normal(size=(1, HEADS, t, D_HEAD))
    values = rng.normal(size=(1, HEADS, t, D_HEAD))
    positions = np.broadcast_to(np.arange(t), (1, HEADS, t))
    return keys, values, positions


def _row_matches_reference(batched: BatchedLayerKVCache, row: int, ref: LayerKVCache):
    keys, values, positions = batched.row_view(row)
    assert batched.tables[row].length == ref.length
    np.testing.assert_array_equal(keys, ref.keys)
    np.testing.assert_array_equal(values, ref.values)
    np.testing.assert_array_equal(positions, ref.positions)


class TestBatchedLayerKVCache:
    def test_join_append_matches_single_sequence_cache(self):
        rng = np.random.default_rng(0)
        batched = BatchedLayerKVCache(max_batch=3, n_heads=HEADS, d_head=D_HEAD)
        refs = []
        for row, t in enumerate((6, 4, 9)):
            keys, values, positions = _prompt(rng, t)
            batched.join_row(row, keys, values, positions)
            refs.append(LayerKVCache.from_prompt(keys, values))
        for step in range(3):
            k = rng.normal(size=(3, HEADS, D_HEAD))
            v = rng.normal(size=(3, HEADS, D_HEAD))
            positions = np.asarray([6 + step, 4 + step, 9 + step])
            batched.append_rows(3, k, v, positions)
            for row, ref in enumerate(refs):
                ref.append(k[row : row + 1], v[row : row + 1], int(positions[row]))
        for row, ref in enumerate(refs):
            _row_matches_reference(batched, row, ref)

    def test_suffix_gather_is_pointer_bump(self):
        rng = np.random.default_rng(1)
        batched = BatchedLayerKVCache(max_batch=1, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 10)
        batched.join_row(0, keys, values, positions)
        ref = LayerKVCache.from_prompt(keys, values)
        pages_before = list(batched.tables[0].pages)
        suffix = np.broadcast_to(np.arange(3, 10), (1, HEADS, 7))
        evicted = batched.gather_row(0, suffix)
        ref.gather(suffix)
        assert evicted == 3
        # Pointer bump, no compaction: the same physical pages, offset moved.
        assert batched.tables[0].offset == 3
        assert batched.tables[0].pages == pages_before
        _row_matches_reference(batched, 0, ref)

    def test_suffix_gather_frees_fully_skipped_pages(self):
        rng = np.random.default_rng(11)
        ps = 16
        batched = BatchedLayerKVCache(max_batch=1, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 3 * ps)
        batched.join_row(0, keys, values, positions)
        free_before = batched.pool.free_pages
        # Drop the oldest 2*ps tokens: two whole leading pages return to the pool.
        suffix = np.broadcast_to(np.arange(2 * ps, 3 * ps), (1, HEADS, ps))
        batched.gather_row(0, suffix)
        assert batched.pool.free_pages == free_before + 2
        assert batched.tables[0].offset == 0
        ref = LayerKVCache.from_prompt(keys, values)
        ref.gather(suffix)
        _row_matches_reference(batched, 0, ref)

    def test_scattered_gather_matches_reference(self):
        rng = np.random.default_rng(2)
        batched = BatchedLayerKVCache(max_batch=1, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 12)
        batched.join_row(0, keys, values, positions)
        ref = LayerKVCache.from_prompt(keys, values)
        selection = np.sort(
            np.stack([rng.choice(12, size=6, replace=False) for _ in range(HEADS)])[
                None
            ],
            axis=-1,
        )
        batched.gather_row(0, selection)
        ref.gather(selection)
        _row_matches_reference(batched, 0, ref)

    def test_gather_after_suffix_shift_uses_relative_indices(self):
        rng = np.random.default_rng(3)
        batched = BatchedLayerKVCache(max_batch=1, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 10)
        batched.join_row(0, keys, values, positions)
        ref = LayerKVCache.from_prompt(keys, values)
        suffix = np.broadcast_to(np.arange(2, 10), (1, HEADS, 8))
        batched.gather_row(0, suffix)
        ref.gather(suffix)
        scattered = np.sort(
            np.stack([rng.choice(8, size=4, replace=False) for _ in range(HEADS)])[
                None
            ],
            axis=-1,
        )
        batched.gather_row(0, scattered)
        ref.gather(scattered)
        _row_matches_reference(batched, 0, ref)

    def test_gather_rejects_out_of_range(self):
        rng = np.random.default_rng(4)
        batched = BatchedLayerKVCache(max_batch=1, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 5)
        batched.join_row(0, keys, values, positions)
        with pytest.raises(IndexError):
            batched.gather_row(0, np.full((1, HEADS, 2), 7))

    def test_free_row_moves_last_row_and_releases_pages(self):
        rng = np.random.default_rng(5)
        batched = BatchedLayerKVCache(max_batch=3, n_heads=HEADS, d_head=D_HEAD)
        refs = []
        for row, t in enumerate((5, 7, 6)):
            keys, values, positions = _prompt(rng, t)
            batched.join_row(row, keys, values, positions)
            refs.append(LayerKVCache.from_prompt(keys, values))
        free_before = batched.pool.free_pages
        batched.free_row(0, 2)  # retire row 0; row 2 moves into it
        _row_matches_reference(batched, 0, refs[2])
        _row_matches_reference(batched, 1, refs[1])
        assert batched.tables[2].length == 0
        assert batched.pool.free_pages > free_before  # row 0's pages returned

    def test_padded_batch_pads_to_longest_row(self):
        rng = np.random.default_rng(6)
        batched = BatchedLayerKVCache(max_batch=2, n_heads=HEADS, d_head=D_HEAD)
        contents = []
        for row in range(2):
            keys, values, positions = _prompt(rng, 8)
            batched.join_row(row, keys, values, positions)
            contents.append((keys, values))
        # Row 0 suffix-evicts; row 1 stays put → ragged lengths.
        batched.gather_row(0, np.broadcast_to(np.arange(3, 8), (1, HEADS, 5)))
        keys_view, values_view, pos_view, lengths, max_len = batched.padded_batch(
            2, rotated=False
        )
        assert max_len == 8
        np.testing.assert_array_equal(lengths, [5, 8])
        np.testing.assert_array_equal(keys_view[0, :, :5], contents[0][0][0, :, 3:])
        np.testing.assert_array_equal(keys_view[1], contents[1][0][0])
        np.testing.assert_array_equal(pos_view[1, 0], np.arange(8))

    def test_single_row_padded_batch_is_zero_copy(self):
        rng = np.random.default_rng(9)
        batched = BatchedLayerKVCache(max_batch=2, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 8)
        batched.join_row(0, keys, values, positions)
        keys_view, _, _, _, _ = batched.padded_batch(1, rotated=False)
        # The contiguous fast path returns a view of the pool slab itself.
        assert keys_view.base is batched.pool._k

    def test_rotated_slab_matches_single_sequence_rotation(self):
        rng = np.random.default_rng(7)
        rope_dims = D_HEAD
        batched = BatchedLayerKVCache(
            max_batch=2, n_heads=HEADS, d_head=D_HEAD, rope_dims=rope_dims
        )
        refs = []
        for row, t in enumerate((6, 4)):
            keys, values, positions = _prompt(rng, t)
            batched.join_row(row, keys, values, positions)
            refs.append(
                LayerKVCache.from_prompt(keys, values, rope_dims=rope_dims)
            )
        k = rng.normal(size=(2, HEADS, D_HEAD))
        batched.append_rows(2, k, k.copy(), np.asarray([6, 4]))
        for row, ref in enumerate(refs):
            ref.append(k[row : row + 1], k[row : row + 1].copy(), (6, 4)[row])
        rotated, _, _, lengths, _ = batched.padded_batch(2, rotated=True)
        for row, ref in enumerate(refs):
            length = int(lengths[row])
            np.testing.assert_array_equal(
                rotated[row, :, :length], ref.rotated_keys()[0]
            )

    def test_capacity_grows_preserving_contents(self):
        rng = np.random.default_rng(8)
        batched = BatchedLayerKVCache(
            max_batch=1, n_heads=HEADS, d_head=D_HEAD, capacity=16
        )
        keys, values, positions = _prompt(rng, 10)
        batched.join_row(0, keys, values, positions)
        ref = LayerKVCache.from_prompt(keys, values)
        for step in range(20):  # forces at least one page allocation
            k = rng.normal(size=(1, HEADS, D_HEAD))
            batched.append_rows(1, k, k.copy(), np.asarray([10 + step]))
            ref.append(k[0:1], k[0:1].copy(), 10 + step)
        assert batched.capacity >= 30
        _row_matches_reference(batched, 0, ref)

    def test_join_row_shared_maps_prefix_pages(self):
        rng = np.random.default_rng(10)
        ps = 16
        batched = BatchedLayerKVCache(max_batch=2, n_heads=HEADS, d_head=D_HEAD)
        keys, values, positions = _prompt(rng, 2 * ps + 5)
        batched.join_row(0, keys, values, positions)
        shared_pages = batched.tables[0].pages[:2]
        suffix = _prompt(rng, 7)
        suffix_pos = np.broadcast_to(
            np.arange(2 * ps, 2 * ps + 7), (1, HEADS, 7)
        )
        batched.join_row_shared(1, shared_pages, 2 * ps, suffix[0], suffix[1], suffix_pos)
        # The mapped pages are physically shared between both rows.
        assert batched.tables[1].pages[:2] == shared_pages
        assert all(batched.pool.refcounts[p] == 2 for p in shared_pages)
        k1, v1, p1 = batched.row_view(1)
        np.testing.assert_array_equal(k1[:, :, : 2 * ps], keys[:, :, : 2 * ps])
        np.testing.assert_array_equal(k1[:, :, 2 * ps :], suffix[0])
        # Evicting on row 1 copy-on-writes: row 0's view of the prefix survives.
        batched.gather_row(
            1,
            np.sort(
                np.stack(
                    [rng.choice(2 * ps + 7, size=9, replace=False) for _ in range(HEADS)]
                )[None],
                axis=-1,
            ),
        )
        k0, _, _ = batched.row_view(0)
        np.testing.assert_array_equal(k0, keys)


class TestJoinUnwind:
    def test_join_unwinds_fully_when_prompt_eviction_exhausts_pool(self):
        """The prompt-phase eviction copy-on-writes away from registered pages
        and can exhaust a fixed pool *after* the row was admitted; the join
        must unwind the whole admission, not leave a phantom row behind."""
        rng = np.random.default_rng(13)
        ps = 8
        manager = BatchedCacheManager(
            n_layers=1,
            n_heads=HEADS,
            d_head=D_HEAD,
            max_batch=2,
            page_size=ps,
            max_pool_tokens=3 * ps,  # exactly the prompt — nothing for COW
        )
        t = 3 * ps
        keys = rng.normal(size=(1, HEADS, t, D_HEAD))
        logits = rng.normal(size=(1, HEADS, t, t))
        logits = np.where(np.triu(np.ones((t, t), dtype=bool), k=1)[None, None], -np.inf, logits)
        policy = H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5))
        tokens = rng.integers(0, 50, size=t)
        with pytest.raises(PoolExhausted):
            manager.join(
                [(keys, keys.copy())],
                [softmax(logits, axis=-1)],
                [logits],
                max_new_tokens=4,
                policy=policy,
                prompt_token_ids=tokens,  # registers → pages become shared
            )
        assert manager.n_active == 0
        assert manager.policies == [] and manager.stats == []
        # The row's refs are gone; only the registry still pins the pages,
        # and those are reclaimable on demand.
        assert manager.registry.reclaimable_pages() == 3
        manager.registry.reclaim(3)
        assert manager.store.pools[0].free_pages == manager.store.pools[0].n_pages
