"""Tests for the per-layer KV cache storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.cache import LayerKVCache


def make_cache(rng, batch=1, heads=2, t=6, d_head=4):
    keys = rng.normal(size=(batch, heads, t, d_head))
    values = rng.normal(size=(batch, heads, t, d_head))
    return LayerKVCache.from_prompt(keys, values), keys, values


class TestConstruction:
    def test_from_prompt_defaults_positions(self, rng):
        cache, keys, values = make_cache(rng)
        assert cache.length == 6
        np.testing.assert_array_equal(cache.positions[0, 0], np.arange(6))
        np.testing.assert_allclose(cache.keys, keys)

    def test_empty(self):
        cache = LayerKVCache.empty(2, 3, 8)
        assert cache.length == 0
        assert cache.batch_size == 2 and cache.n_heads == 3 and cache.d_head == 8

    def test_shape_validation(self, rng):
        keys = rng.normal(size=(1, 2, 4, 3))
        values = rng.normal(size=(1, 2, 5, 3))
        with pytest.raises(ValueError):
            LayerKVCache(keys, values, np.zeros((1, 2, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            LayerKVCache(keys, keys, np.zeros((1, 2, 7), dtype=np.int64))

    def test_nbytes_fp16(self, rng):
        cache, _, _ = make_cache(rng, batch=2, heads=2, t=10, d_head=4)
        # 2 tensors * 2 batch * 2 heads * 10 tokens * 4 dims * 2 bytes
        assert cache.nbytes(2) == 2 * 2 * 2 * 10 * 4 * 2


class TestAppendGather:
    def test_append_grows_and_records_position(self, rng):
        cache, _, _ = make_cache(rng)
        k = rng.normal(size=(1, 2, 4))
        v = rng.normal(size=(1, 2, 4))
        cache.append(k, v, position=42)
        assert cache.length == 7
        assert cache.positions[0, 0, -1] == 42
        np.testing.assert_allclose(cache.keys[:, :, -1, :], k)

    def test_append_shape_check(self, rng):
        cache, _, _ = make_cache(rng)
        with pytest.raises(ValueError):
            cache.append(np.zeros((1, 2, 5)), np.zeros((1, 2, 5)), 0)

    def test_gather_keeps_selected(self, rng):
        cache, keys, _ = make_cache(rng)
        indices = np.broadcast_to(np.array([0, 3, 5]), (1, 2, 3)).copy()
        cache.gather(indices)
        assert cache.length == 3
        np.testing.assert_allclose(cache.keys[0, 0], keys[0, 0, [0, 3, 5]])
        np.testing.assert_array_equal(cache.positions[0, 0], [0, 3, 5])
        assert cache.total_evicted == 3

    def test_gather_per_head_selections_differ(self, rng):
        cache, keys, _ = make_cache(rng)
        indices = np.stack([np.array([[0, 1, 2]]), np.array([[3, 4, 5]])], axis=1)
        cache.gather(indices)
        np.testing.assert_allclose(cache.keys[0, 0], keys[0, 0, :3])
        np.testing.assert_allclose(cache.keys[0, 1], keys[0, 1, 3:])

    def test_gather_accepts_1d_indices(self, rng):
        cache, _, _ = make_cache(rng)
        cache.gather(np.array([1, 2]))
        assert cache.length == 2

    def test_gather_out_of_range(self, rng):
        cache, _, _ = make_cache(rng)
        with pytest.raises(IndexError):
            cache.gather(np.array([10]))

    def test_reorder_batch(self, rng):
        cache, keys, _ = make_cache(rng, batch=3)
        cache.reorder(np.array([2, 2, 0]))
        np.testing.assert_allclose(cache.keys[0], keys[2])
        np.testing.assert_allclose(cache.keys[2], keys[0])

    def test_reorder_out_of_range(self, rng):
        cache, _, _ = make_cache(rng, batch=2)
        with pytest.raises(IndexError):
            cache.reorder(np.array([0, 5]))

    def test_renumbered_positions(self, rng):
        cache, _, _ = make_cache(rng)
        cache.gather(np.array([1, 4, 5]))
        np.testing.assert_array_equal(cache.renumbered_positions()[0, 0], [0, 1, 2])
        np.testing.assert_array_equal(cache.retained_original_positions()[0, 0], [1, 4, 5])

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_gather_preserves_order_and_content(self, length, keep, seed):
        keep = min(keep, length)
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(1, 2, length, 3))
        cache = LayerKVCache.from_prompt(keys, keys.copy())
        chosen = np.sort(rng.choice(length, size=keep, replace=False))
        cache.gather(np.broadcast_to(chosen, (1, 2, keep)).copy())
        assert cache.length == keep
        np.testing.assert_allclose(cache.keys[0, 0], keys[0, 0, chosen])
        assert np.all(np.diff(cache.positions[0, 0]) > 0)
