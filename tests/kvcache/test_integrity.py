"""Unit tests for the pool-integrity auditor and the registry's pin report.

``BlockPool.check_invariants`` is the ground truth the serving engine's
:meth:`~repro.serving.engine.ContinuousBatchingEngine.check_invariants`
builds on; these tests pin what it catches (and what a clean pool looks
like) at the pool level, including the quantized pool's parameter checks.
"""

from __future__ import annotations

import heapq

import numpy as np
import pytest

from repro.kvcache.offload import TieredBlockPool, TieredQuantizedBlockPool
from repro.kvcache.paged import BlockPool, PageTable, PagedKVStore, PrefixRegistry
from repro.kvcache.quant import QuantizedBlockPool

HEADS, D_HEAD, PAGE = 2, 4, 4


def make_pool(cls=BlockPool, **kwargs):
    kwargs.setdefault("page_size", PAGE)
    kwargs.setdefault("n_pages", 8)
    return cls(HEADS, D_HEAD, **kwargs)


def seeded_table(pool, n_tokens, rng):
    table = PageTable()
    keys = rng.standard_normal((HEADS, n_tokens, D_HEAD))
    values = rng.standard_normal((HEADS, n_tokens, D_HEAD))
    positions = np.broadcast_to(np.arange(n_tokens), (HEADS, n_tokens))
    pool.extend(table, keys, values, positions)
    return table


class TestBlockPoolAudit:
    def test_fresh_pool_is_clean(self):
        pool = make_pool()
        assert pool.check_invariants() == []
        assert pool.check_invariants(owners=[]) == []

    def test_owner_accounting_matches(self):
        pool = make_pool()
        rng = np.random.default_rng(0)
        a = seeded_table(pool, 6, rng)
        b = seeded_table(pool, 3, rng)
        assert pool.check_invariants(owners=[a, b]) == []
        # A forked (shared) table is one more reference per page.
        fork = a.clone()
        pool.retain(fork.pages)
        assert pool.check_invariants(owners=[a, b, fork]) == []
        pool.release_table(fork)
        assert pool.check_invariants(owners=[a, b]) == []

    def test_detects_leaked_reference(self):
        pool = make_pool()
        rng = np.random.default_rng(1)
        table = seeded_table(pool, 5, rng)
        pool.refcounts[table.pages[0]] += 1  # simulate a lost release
        violations = pool.check_invariants(owners=[table])
        assert violations and "refcount" in violations[0]

    def test_detects_missing_owner(self):
        pool = make_pool()
        rng = np.random.default_rng(2)
        table = seeded_table(pool, 5, rng)
        # Claiming there are no owners at all: every mapped page is a leak.
        violations = pool.check_invariants(owners=[])
        assert len(violations) == len(table.pages)

    def test_detects_free_list_corruption(self):
        pool = make_pool()
        rng = np.random.default_rng(3)
        table = seeded_table(pool, 5, rng)
        heapq.heappush(pool._free, table.pages[0])  # free a still-mapped page
        violations = pool.check_invariants()
        assert any("free" in v for v in violations)

    def test_detects_shared_counter_drift(self):
        pool = make_pool()
        rng = np.random.default_rng(4)
        seeded_table(pool, 5, rng)
        pool._n_shared += 1
        violations = pool.check_invariants()
        assert any("shared-page counter" in v for v in violations)

    def test_detects_table_span_overflow(self):
        pool = make_pool()
        rng = np.random.default_rng(5)
        table = seeded_table(pool, 5, rng)
        table.length = table.allocated(pool.page_size) + 1
        violations = pool.check_invariants(owners=[table])
        assert any("spans" in v for v in violations)

    def test_pinned_pages_counted(self):
        pool = make_pool()
        rng = np.random.default_rng(6)
        table = seeded_table(pool, 5, rng)
        pool.retain(table.pages)  # a registry-style pin
        assert pool.check_invariants(owners=[table], pinned=table.pages) == []
        violations = pool.check_invariants(owners=[table])
        assert violations
        pool.release(table.pages)


class TestQuantizedPoolAudit:
    def test_clean_after_writes(self):
        pool = make_pool(QuantizedBlockPool, dtype=np.float64)
        rng = np.random.default_rng(7)
        table = seeded_table(pool, 7, rng)
        assert pool.check_invariants(owners=[table]) == []

    def test_detects_corrupted_scale(self):
        pool = make_pool(QuantizedBlockPool, dtype=np.float64)
        rng = np.random.default_rng(8)
        table = seeded_table(pool, 7, rng)
        pool._qscale["k"][table.pages[0]] *= 2.0  # params no longer match ranges
        violations = pool.check_invariants(owners=[table])
        assert violations and any("scale" in v or "param" in v for v in violations)

    def test_detects_nonfinite_range(self):
        pool = make_pool(QuantizedBlockPool, dtype=np.float64)
        rng = np.random.default_rng(9)
        table = seeded_table(pool, 7, rng)
        pool._qlo["v"][table.pages[0], 0] = np.nan
        violations = pool.check_invariants(owners=[table])
        assert violations

    def test_detects_shape_drift(self):
        pool = make_pool(QuantizedBlockPool, dtype=np.float64)
        pool._qzero["k"] = pool._qzero["k"][:-1]  # lost a page's params
        violations = pool.check_invariants()
        assert violations and any("shape" in v for v in violations)


class TestTieredPoolAudit:
    """Tier-state invariants of the offload pools (see ``repro.kvcache.offload``):
    page resident XOR spilled, mutually-inverse page↔frame maps, a free-frame
    list that is exactly the unmapped frames, no spill-index leaks and no
    leaked pins — plus the quantized pool's spill-record parameter cross-check."""

    def _tiered(self, cls=TieredBlockPool, **kwargs):
        kwargs.setdefault("tier0_pages", 3)
        kwargs.setdefault("spill_backend", "compressed")
        return make_pool(cls, **kwargs)

    def _spilled_page(self, pool, table):
        pages = [p for p in table.pages if p in pool.arena]
        assert pages, "expected the tight frame budget to have spilled a page"
        return pages[0]

    def test_clean_under_spill_pressure(self):
        rng = np.random.default_rng(20)
        for cls in (TieredBlockPool, TieredQuantizedBlockPool):
            pool = self._tiered(cls, dtype=np.float64)
            tables = [seeded_table(pool, 3 * PAGE, rng) for _ in range(2)]
            assert len(pool.arena) > 0  # 6 pages over 3 frames: cold pages spilled
            assert pool.check_invariants(owners=tables) == []

    def test_detects_page_resident_and_spilled(self):
        pool = self._tiered()
        rng = np.random.default_rng(21)
        table = seeded_table(pool, 5 * PAGE, rng)
        resident = next(p for p in table.pages if pool._page_frame[p] >= 0)
        spilled = self._spilled_page(pool, table)
        pool.arena.store(resident, pool.arena.load(spilled))  # stray double-home
        violations = pool.check_invariants(owners=[table])
        assert any("both resident and spilled" in v for v in violations)

    def test_detects_frame_map_divergence(self):
        pool = self._tiered()
        rng = np.random.default_rng(22)
        table = seeded_table(pool, 2 * PAGE, rng)
        frame = int(pool._page_frame[table.pages[0]])
        pool._frame_page[frame] = -1  # forward map no longer inverts
        violations = pool.check_invariants(owners=[table])
        assert any("owned by" in v or "free-frame" in v for v in violations)

    def test_detects_free_frame_list_corruption(self):
        pool = self._tiered()
        rng = np.random.default_rng(23)
        table = seeded_table(pool, 2 * PAGE, rng)
        heapq.heappush(pool._free_frames, int(pool._page_frame[table.pages[0]]))
        violations = pool.check_invariants(owners=[table])
        assert any("free-frame list" in v for v in violations)

    def test_detects_spill_index_leak(self):
        pool = self._tiered()
        rng = np.random.default_rng(24)
        table = seeded_table(pool, 5 * PAGE, rng)
        page = self._spilled_page(pool, table)
        payload = pool.arena.load(page)
        pool.release_table(table)  # drops every record…
        pool.arena.store(page, payload)  # …but one sneaks back in
        violations = pool.check_invariants()
        assert any("spill-index leak" in v for v in violations)

    def test_detects_leaked_pin(self):
        pool = self._tiered()
        rng = np.random.default_rng(25)
        table = seeded_table(pool, PAGE, rng)
        pool._pin([table.pages[0]])
        violations = pool.check_invariants(owners=[table])
        assert any("pin(s) leaked" in v for v in violations)
        pool._unpin([table.pages[0]])
        assert pool.check_invariants(owners=[table]) == []

    def test_quantized_detects_stale_spilled_params(self):
        pool = self._tiered(TieredQuantizedBlockPool, dtype=np.float64)
        rng = np.random.default_rng(26)
        table = seeded_table(pool, 5 * PAGE, rng)
        page = self._spilled_page(pool, table)
        pool._qscale["k"][page] *= 2.0  # live params drift from the record
        violations = pool.check_invariants(owners=[table])
        assert any("parameter section diverged" in v for v in violations)

    def test_release_drops_arena_records(self):
        pool = self._tiered()
        rng = np.random.default_rng(27)
        table = seeded_table(pool, 5 * PAGE, rng)
        assert len(pool.arena) > 0
        pool.release_table(table)
        assert len(pool.arena) == 0  # refcount-0 pages leave the spill index
        assert pool.check_invariants() == []


class TestStoreAndRegistryAudit:
    def _store(self, n_layers=2):
        return PagedKVStore(
            n_layers, HEADS, D_HEAD, page_size=PAGE, n_pages=16, growable=False
        )

    def test_store_aggregates_layer_labels(self):
        store = self._store()
        rng = np.random.default_rng(10)
        tables = [seeded_table(store.pools[i], 5, rng) for i in range(2)]
        assert store.check_invariants([[t] for t in tables]) == []
        store.pools[1].refcounts[tables[1].pages[0]] += 1
        violations = store.check_invariants([[t] for t in tables])
        assert violations and "layer 1" in violations[0]
        store.pools[1].refcounts[tables[1].pages[0]] -= 1

    def test_registry_pinned_pages_reports_chunks(self):
        store = self._store()
        registry = PrefixRegistry(store)
        rng = np.random.default_rng(11)
        tables = [seeded_table(pool, 2 * PAGE, rng) for pool in store.pools]
        token_ids = rng.integers(0, 50, size=2 * PAGE).astype(np.int64)
        registry.register(token_ids, tables)
        pinned = registry.pinned_pages()
        assert len(pinned) == 2
        for layer, pages in enumerate(pinned):
            assert pages  # page-aligned chunks were pinned
            assert set(pages) <= set(tables[layer].pages)
        # The audit balances: tables + pins account for every refcount.
        assert store.check_invariants([[t] for t in tables], pinned) == []
        registry.clear()
        assert registry.pinned_pages() == [[], []]
        assert store.check_invariants([[t] for t in tables]) == []
