"""Tests for the cache manager that connects layers, caches and policies."""

import numpy as np
import pytest

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import FullAttentionPolicy, H2OPolicy, WindowAttentionPolicy
from repro.kvcache.manager import CacheManager
from repro.models.tensor_ops import softmax

N_LAYERS, N_HEADS, D_HEAD, T = 2, 2, 4, 12


def prompt_inputs(rng, t=T, batch=1):
    prompt_kv, prompt_attn, prompt_logits = [], [], []
    for _ in range(N_LAYERS):
        keys = rng.normal(size=(batch, N_HEADS, t, D_HEAD))
        values = rng.normal(size=(batch, N_HEADS, t, D_HEAD))
        logits = rng.normal(size=(batch, N_HEADS, t, t))
        mask = np.triu(np.ones((t, t), dtype=bool), k=1)
        logits = np.where(mask[None, None], -np.inf, logits)
        prompt_kv.append((keys, values))
        prompt_logits.append(logits)
        prompt_attn.append(softmax(logits, axis=-1))
    return prompt_kv, prompt_attn, prompt_logits


def make_manager(policy, positional_mode=None):
    return CacheManager(policy, N_LAYERS, N_HEADS, D_HEAD, positional_mode=positional_mode)


class TestInitialization:
    def test_full_policy_keeps_whole_prompt(self, rng):
        manager = make_manager(FullAttentionPolicy())
        manager.initialize_from_prompt(*prompt_inputs(rng), max_new_tokens=4)
        assert manager.cache_lengths() == [T, T]
        assert manager.prompt_len == T
        assert manager.current_position == T

    def test_reduction_policy_trims_prompt(self, rng):
        policy = WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5))
        manager = make_manager(policy)
        manager.initialize_from_prompt(*prompt_inputs(rng), max_new_tokens=4)
        assert manager.cache_lengths() == [6, 6]

    def test_layer_count_mismatch(self, rng):
        manager = make_manager(FullAttentionPolicy())
        kv, attn, logits = prompt_inputs(rng)
        with pytest.raises(ValueError):
            manager.initialize_from_prompt(kv[:1], attn[:1], logits[:1], 4)

    def test_invalid_positional_mode(self):
        with pytest.raises(ValueError):
            CacheManager(FullAttentionPolicy(), 1, 1, 1, positional_mode="relative")


class TestDecodeFlow:
    def _step(self, manager, rng, layer_idx):
        view = manager.layer_view(layer_idx)
        k = rng.normal(size=(1, N_HEADS, D_HEAD))
        v = rng.normal(size=(1, N_HEADS, D_HEAD))
        view.append(k, v)
        keys, values, key_pos, query_pos, keys_rotated = view.attention_view()
        assert keys_rotated is False  # no rope_dims configured in these tests
        # attention_view returns live views into the slab; snapshot them before
        # observe() may evict (the decode path consumes them before observing).
        keys, key_pos = keys.copy(), key_pos.copy()
        logits = rng.normal(size=(1, N_HEADS, keys.shape[2]))
        view.observe(logits, softmax(logits, axis=-1))
        return keys, key_pos, query_pos

    def test_window_policy_keeps_budget_during_decode(self, rng):
        policy = WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5))
        manager = make_manager(policy)
        manager.initialize_from_prompt(*prompt_inputs(rng), max_new_tokens=6)
        for _ in range(4):
            for layer in range(N_LAYERS):
                self._step(manager, rng, layer)
            manager.advance()
        assert manager.cache_lengths() == [6, 6]
        assert manager.generation_step == 4
        assert manager.stats.n_steps == 4

    def test_original_positions_reported(self, rng):
        policy = WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5))
        manager = make_manager(policy, positional_mode="original")
        manager.initialize_from_prompt(*prompt_inputs(rng), max_new_tokens=4)
        _, key_pos, query_pos = self._step(manager, rng, 0)
        # Window kept original positions 6..11, new token appended at 12.
        np.testing.assert_array_equal(key_pos[0, 0], [6, 7, 8, 9, 10, 11, 12])
        assert int(query_pos) == T

    def test_new_positions_are_contiguous(self, rng):
        policy = WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5))
        manager = make_manager(policy, positional_mode="new")
        manager.initialize_from_prompt(*prompt_inputs(rng), max_new_tokens=4)
        _, key_pos, query_pos = self._step(manager, rng, 0)
        np.testing.assert_array_equal(key_pos[0, 0], np.arange(7))
        assert int(query_pos) == 6

    def test_stats_accounting(self, rng):
        policy = H2OPolicy(CachePolicyConfig(kv_fraction=0.5))
        manager = make_manager(policy)
        manager.initialize_from_prompt(*prompt_inputs(rng), max_new_tokens=3)
        for _ in range(3):
            for layer in range(N_LAYERS):
                self._step(manager, rng, layer)
            manager.advance()
        stats = manager.stats
        assert stats.total_appended == T * N_LAYERS + 3 * N_LAYERS
        assert stats.total_evicted > 0
        assert stats.kv_entries_read() == sum(sum(step) for step in stats.lengths_per_step)
        assert stats.peak_cache_length() == 7
        summary = stats.summary()
        assert summary["n_steps"] == 3

    def test_shared_selection_applies_to_all_layers(self, rng):
        policy = KeyformerPolicy(KeyformerConfig(kv_fraction=0.5, shared_score=True))
        manager = make_manager(policy)
        manager.initialize_from_prompt(*prompt_inputs(rng), max_new_tokens=4)
        assert manager.cache_lengths() == [6, 6]
        positions = [c.retained_original_positions() for c in manager.caches]
        np.testing.assert_array_equal(positions[0], positions[1])

    def test_layer_view_bounds(self, rng):
        manager = make_manager(FullAttentionPolicy())
        with pytest.raises(IndexError):
            manager.layer_view(5)

    def test_reorder_propagates_to_caches_and_policy(self, rng):
        policy = H2OPolicy(CachePolicyConfig(kv_fraction=0.5))
        manager = make_manager(policy)
        manager.initialize_from_prompt(*prompt_inputs(rng, batch=2), max_new_tokens=4)
        before = manager.caches[0].keys.copy()
        manager.reorder(np.array([1, 0]))
        np.testing.assert_allclose(manager.caches[0].keys[0], before[1])
        assert policy.score.get(0).shape[0] == 2

    def test_total_kv_bytes_decreases_after_reduction(self, rng):
        full = make_manager(FullAttentionPolicy())
        full.initialize_from_prompt(*prompt_inputs(rng), max_new_tokens=4)
        reduced = make_manager(WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.25)))
        reduced.initialize_from_prompt(*prompt_inputs(rng), max_new_tokens=4)
        assert reduced.total_kv_bytes() < full.total_kv_bytes()

    def test_initialize_empty(self):
        manager = make_manager(FullAttentionPolicy())
        manager.initialize_empty(batch_size=2, max_new_tokens=4)
        assert manager.cache_lengths() == [0, 0]
