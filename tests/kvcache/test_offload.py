"""Unit tests for the tiered KV-offload machinery (``repro.kvcache.offload``).

The equivalence wall (``test_offload_equivalence.py``) proves whole-engine
bit-exactness; these tests pin the mechanics underneath it — the two arena
backends, frame assignment and victim selection, spill/restore byte
round-trips, pinning, bulk prefetch restore, logical growth, telemetry, and
the knob plumbing through :class:`~repro.kvcache.paged.PagedKVStore`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvcache.offload import (
    SPILL_BACKENDS,
    CompressedSpillArena,
    MmapSpillArena,
    TieredBlockPool,
    TieredQuantizedBlockPool,
    resolve_spill_arena,
    resolve_tiered_pool_class,
)
from repro.kvcache.paged import BlockPool, PageTable, PagedKVStore, PoolExhausted
from repro.kvcache.quant import QuantizedBlockPool

HEADS, D_HEAD, PAGE = 2, 4, 4


def make_pool(cls=TieredBlockPool, **kwargs):
    kwargs.setdefault("page_size", PAGE)
    kwargs.setdefault("n_pages", 8)
    kwargs.setdefault("tier0_pages", 3)
    return cls(HEADS, D_HEAD, **kwargs)


def seeded_table(pool, n_tokens, rng):
    table = PageTable()
    keys = rng.standard_normal((HEADS, n_tokens, D_HEAD))
    values = rng.standard_normal((HEADS, n_tokens, D_HEAD))
    positions = np.broadcast_to(np.arange(n_tokens), (HEADS, n_tokens))
    pool.extend(table, keys, values, positions)
    return table, keys, values


class TestArenas:
    @pytest.mark.parametrize("backend", SPILL_BACKENDS)
    def test_store_load_roundtrip_is_byte_exact(self, backend):
        arena = resolve_spill_arena(backend, record_nbytes=64)
        payloads = {p: bytes([p % 256]) * 64 for p in (0, 3, 17)}
        for page, payload in payloads.items():
            arena.store(page, payload)
        assert len(arena) == 3
        assert sorted(arena.keys()) == [0, 3, 17]
        for page, payload in payloads.items():
            assert page in arena
            assert arena.load(page) == payload
        arena.drop(3)
        assert 3 not in arena and len(arena) == 2
        arena.drop(3)  # idempotent
        arena.close()

    @pytest.mark.parametrize("backend", SPILL_BACKENDS)
    def test_overwrite_replaces_record(self, backend):
        arena = resolve_spill_arena(backend, record_nbytes=16)
        arena.store(5, b"a" * 16)
        arena.store(5, b"b" * 16)
        assert arena.load(5) == b"b" * 16
        assert len(arena) == 1
        arena.close()

    def test_mmap_grows_by_doubling_and_reuses_slots(self):
        arena = MmapSpillArena(record_nbytes=8)
        for page in range(20):  # crosses the 8-record floor and one doubling
            arena.store(page, page.to_bytes(1, "little") * 8)
        assert arena._capacity >= 20
        for page in range(20):
            assert arena.load(page) == page.to_bytes(1, "little") * 8
        arena.drop(0)
        arena.store(99, b"z" * 8)  # freed slot is reused lowest-first
        assert arena._slots[99] == 0
        assert arena.nbytes() == 20 * 8
        arena.close()

    def test_mmap_rejects_wrong_record_size(self):
        arena = MmapSpillArena(record_nbytes=8)
        with pytest.raises(ValueError, match="arena records are 8"):
            arena.store(0, b"too short")
        arena.close()
        with pytest.raises(ValueError):
            MmapSpillArena(record_nbytes=0)

    def test_compressed_nbytes_tracks_compressed_size(self):
        arena = CompressedSpillArena()
        arena.store(0, b"\x00" * 4096)
        assert 0 < arena.nbytes() < 4096  # zeros compress
        arena.close()
        assert len(arena) == 0

    def test_resolve_rejects_unknown_backend(self):
        assert isinstance(resolve_spill_arena(None, 8), CompressedSpillArena)
        with pytest.raises(ValueError, match="unknown spill_backend"):
            resolve_spill_arena("tape", 8)


class TestTieredPoolMechanics:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="tier0_pages must be >= 2"):
            make_pool(tier0_pages=1)
        with pytest.raises(ValueError, match="unknown spill_backend"):
            make_pool(spill_backend="tape")

    def test_slabs_sized_to_frames_not_pages(self):
        pool = make_pool()
        assert pool.n_pages == 8
        assert pool.n_frames == 3
        assert pool._k.shape[1] == 3 * PAGE  # physical slots = frames
        assert pool.is_contiguous(PageTable()) is False

    @pytest.mark.parametrize("backend", SPILL_BACKENDS)
    def test_spill_restore_roundtrip_reproduces_bytes(self, backend):
        pool = make_pool(spill_backend=backend)
        rng = np.random.default_rng(0)
        table, keys, values = seeded_table(pool, 6 * PAGE, rng)  # > frames
        assert len(pool.arena) == 6 - pool.n_frames
        got_k = pool.token_view(table, pool._k)
        got_v = pool.token_view(table, pool._v)
        assert got_k.tobytes() == keys.tobytes()
        assert got_v.tobytes() == values.tobytes()
        assert pool.check_invariants(owners=[table]) == []

    def test_victim_selection_is_lru_by_default(self):
        pool = make_pool()
        rng = np.random.default_rng(1)
        table, _, _ = seeded_table(pool, 3 * PAGE, rng)
        a, b, c = table.pages
        pool._page_base(a)  # touch: a is now the hottest
        pool._page_base(b)
        pool._page_base(c)
        pool._page_base(a)
        assert pool._choose_victim() == b  # coldest of the residents

    def test_spill_ranker_outranks_recency(self):
        pool = make_pool()
        rng = np.random.default_rng(2)
        table, _, _ = seeded_table(pool, 3 * PAGE, rng)
        a, b, c = table.pages
        pool._page_base(a)  # LRU would evict b next…
        pool.spill_ranker = lambda page: 0 if page == c else 1
        assert pool._choose_victim() == c  # …but the ranker marks c coldest

    def test_all_frames_pinned_raises_pool_exhausted(self):
        pool = make_pool()
        rng = np.random.default_rng(3)
        table, _, _ = seeded_table(pool, 3 * PAGE, rng)
        pool._pin(table.pages)
        with pytest.raises(PoolExhausted, match="tier-0 frames exhausted"):
            pool._choose_victim()
        pool._unpin(table.pages)
        assert pool._pins == {}

    def test_ensure_resident_rejects_oversized_sets(self):
        pool = make_pool()
        rng = np.random.default_rng(4)
        table, _, _ = seeded_table(pool, 5 * PAGE, rng)
        with pytest.raises(PoolExhausted, match="simultaneously resident"):
            pool._ensure_resident(table.pages)

    def test_restore_pages_bulk_prefetch(self):
        pool = make_pool()
        rng = np.random.default_rng(5)
        table, _, _ = seeded_table(pool, 6 * PAGE, rng)
        spilled = [p for p in table.pages if p in pool.arena]
        assert len(spilled) == 3
        restored = pool.restore_pages(table.pages)
        assert restored == pool.n_frames  # as many as tier-0 holds
        assert all(pool.tier_page_state(p) == "resident" for p in spilled)
        assert pool._pins == {}  # prefetch pins are transient
        # Already-resident, out-of-range and unknown pages are no-ops.
        assert pool.restore_pages(spilled + [-1, 10_000]) == 0
        assert pool.check_invariants(owners=[table]) == []

    def test_release_frees_frames_and_arena_records(self):
        pool = make_pool()
        rng = np.random.default_rng(6)
        table, _, _ = seeded_table(pool, 6 * PAGE, rng)
        pool.release_table(table)
        assert len(pool.arena) == 0
        assert sorted(pool._free_frames) == list(range(pool.n_frames))
        assert pool.check_invariants() == []

    def test_logical_growth_keeps_frames_fixed(self):
        pool = make_pool(n_pages=4, growable=True)
        rng = np.random.default_rng(7)
        table, keys, _ = seeded_table(pool, 10 * PAGE, rng)  # forces _grow
        assert pool.n_pages >= 10
        assert pool.n_frames == 3  # growth buys spillable capacity only
        assert pool.token_view(table, pool._k).tobytes() == keys.tobytes()
        assert pool.check_invariants(owners=[table]) == []

    def test_tier_usage_telemetry_counts_traffic(self):
        pool = make_pool()
        rng = np.random.default_rng(8)
        table, _, _ = seeded_table(pool, 6 * PAGE, rng)
        usage = pool.tier_usage()
        assert usage["tier0_frames"] == 3
        assert usage["resident_pages"] == 3
        assert usage["spilled_pages"] == 3
        assert usage["spills"] >= 3 and usage["spill_bytes"] > 0
        payload_nbytes = pool._payload_nbytes()
        assert usage["spill_bytes"] == usage["spills"] * payload_nbytes
        pool.token_view(table, pool._k)  # forces restores
        after = pool.tier_usage()
        assert after["restores"] > 0
        assert after["restore_bytes"] == after["restores"] * payload_nbytes
        states = {pool.tier_page_state(p) for p in range(pool.n_pages)}
        assert states <= {"resident", "spilled", "free"}

    def test_spill_hook_fault_leaves_state_unchanged(self):
        pool = make_pool()
        rng = np.random.default_rng(9)
        table, _, _ = seeded_table(pool, 3 * PAGE, rng)
        before = {
            "frames": pool._page_frame.copy(),
            "arena": sorted(pool.arena.keys()),
            "spills": pool.n_spills,
        }

        def boom():
            raise RuntimeError("injected spill fault")

        pool.spill_hook = boom
        bad = PageTable()
        keys = rng.standard_normal((HEADS, PAGE, D_HEAD))
        positions = np.broadcast_to(np.arange(PAGE), (HEADS, PAGE))
        with pytest.raises(RuntimeError, match="injected spill fault"):
            pool.extend(bad, keys, keys, positions)  # needs a frame -> spills
        # The transfer fault fired before any mutation: residency maps, the
        # arena and the spill counters are exactly as they were.
        assert np.array_equal(pool._page_frame, before["frames"])
        assert sorted(pool.arena.keys()) == before["arena"]
        assert pool.n_spills == before["spills"]
        pool.spill_hook = None
        pool.release_table(bad)  # the caller unwinds its own failed alloc
        assert pool.check_invariants(owners=[table]) == []


class TestTieredQuantizedPool:
    def test_param_rows_travel_with_the_payload(self):
        pool = make_pool(TieredQuantizedBlockPool, dtype=np.float64)
        rng = np.random.default_rng(10)
        table, keys, values = seeded_table(pool, 6 * PAGE, rng)
        spilled = [p for p in table.pages if p in pool.arena]
        assert spilled
        # Round-trip through the arena: dequantized reads equal a fresh
        # single-tier quantized pool writing the same history.
        ref = QuantizedBlockPool(HEADS, D_HEAD, page_size=PAGE, n_pages=8)
        ref_table = PageTable()
        positions = np.broadcast_to(np.arange(6 * PAGE), (HEADS, 6 * PAGE))
        ref.extend(ref_table, keys, values, positions)
        got = pool.token_view(table, pool._k)
        want = ref.token_view(ref_table, ref._k)
        assert got.tobytes() == want.tobytes()
        assert pool.check_invariants(owners=[table]) == []

    def test_reset_mirrors_into_spilled_records(self):
        pool = make_pool(TieredQuantizedBlockPool, dtype=np.float64)
        rng = np.random.default_rng(11)
        table, _, _ = seeded_table(pool, 6 * PAGE, rng)
        page = next(p for p in table.pages if p in pool.arena)
        pool._reset_page_params([page])
        # The stored parameter section must track the live (reset) params —
        # otherwise restore would resurrect the stale wider ranges.
        assert pool.check_invariants(owners=[table]) == []


class TestKnobPlumbing:
    def test_resolve_tiered_pool_class(self):
        assert resolve_tiered_pool_class(BlockPool) is TieredBlockPool
        assert resolve_tiered_pool_class(QuantizedBlockPool) is TieredQuantizedBlockPool
        with pytest.raises(ValueError, match="no tiered variant"):
            resolve_tiered_pool_class(int)

    def test_store_builds_tiered_pools(self):
        store = PagedKVStore(
            2, HEADS, D_HEAD, page_size=PAGE, n_pages=8, growable=False,
            tier0_pages=3, spill_backend="mmap",
        )
        assert store.tier0_frames() == 3
        for pool in store.pools:
            assert isinstance(pool, TieredBlockPool)
            assert pool.spill_backend == "mmap"
        usage = store.usage()
        assert usage["tier"]["tier0_frames"] == 3
        assert usage["tier"]["resident_pages"] == 0

    def test_store_without_offload_has_no_tier(self):
        store = PagedKVStore(2, HEADS, D_HEAD, page_size=PAGE, n_pages=8)
        assert store.tier0_frames() is None
        assert "tier" not in store.usage()

    def test_store_rejects_backend_without_budget(self):
        with pytest.raises(ValueError, match="spill_backend requires"):
            PagedKVStore(
                2, HEADS, D_HEAD, page_size=PAGE, n_pages=8, spill_backend="mmap"
            )
