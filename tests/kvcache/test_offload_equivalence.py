"""Property test: tiered KV offload is bit-identical to single-tier serving.

The offload determinism contract (see ``docs/kvcache.md``) says spill →
restore is **byte-exact**: which pages happen to be resident, which backend
holds the cold tail and how often the victim selector churned must never
show up in the output.  Hypothesis drives random request subsets, submission
orders, engine widths, pool sizes (small enough to preempt) and tier-0 frame
budgets (small enough to spill constantly) across every eviction policy and
both KV precisions, and every request must reproduce its dedicated
single-request reference exactly — tokens and log-probabilities, bit for
bit — while the strict pool-integrity audit stays clean after **every**
engine step and the tier-1 arena drains to zero records at retire.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import (
    FullAttentionPolicy,
    H2OPolicy,
    WindowAttentionPolicy,
)
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.kvcache.paged import PagedKVStore
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine

VOCAB = 96
MAX_NEW_TOKENS = 8
PROMPT_LENGTHS = (41, 18, 29, 37)
PAGE_SIZE = 16

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)

_RNG = np.random.default_rng(47)
_PROMPTS = [
    _RNG.integers(0, VOCAB, size=n).astype(np.int64) for n in PROMPT_LENGTHS
]
_CONFIG = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)

_POLICIES = {
    "full": FullAttentionPolicy,
    "window": lambda: WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5)),
    "h2o": lambda: H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5)),
    "keyformer": lambda: KeyformerPolicy(KeyformerConfig(kv_fraction=0.5)),
}

#: Dedicated single-request reference outputs per (policy, kv_dtype) — the
#: existing equivalence walls pin batched serving to these without offload,
#: so matching them bit-exactly *is* matching the no-offload engine.
_EXPECTED = {
    (name, kv_dtype): [
        Generator(_MODEL, factory(), kv_dtype=kv_dtype).generate(
            p, _CONFIG, sampler=GreedySampler()
        )
        for p in _PROMPTS
    ]
    for name, factory in _POLICIES.items()
    for kv_dtype in (None, "int8")
}


def _tier0_budget(kv_dtype: str | None, frames: int) -> int:
    """Bytes funding exactly ``frames`` tier-0 frames per layer pool."""
    config = _MODEL.config
    page_bytes = PagedKVStore.page_nbytes_for(
        kv_dtype,
        config.n_heads,
        config.d_head,
        PAGE_SIZE,
        config.np_dtype,
        config.rope_dims if config.positional == "rope" else 0,
    )
    return int(frames * config.n_layers * page_bytes)


def _assert_drained(engine: ContinuousBatchingEngine) -> None:
    """Zero-leak wall: pages free, pins gone, tier-1 arenas empty."""
    manager = engine._manager
    assert manager is not None
    manager.registry.clear()
    for layer, pool in enumerate(manager.store.pools):
        assert not pool.check_invariants(), f"layer {layer} audit dirty at drain"
        assert int((pool.refcounts != 0).sum()) == 0, f"layer {layer} leaked pages"
        assert pool.free_pages == pool.n_pages
        assert len(pool.arena) == 0, (
            f"layer {layer}: {len(pool.arena)} spilled page(s) leaked in the "
            "tier-1 arena after retire"
        )


@pytest.mark.parametrize("kv_dtype", [None, "int8"], ids=["fp64", "int8"])
@pytest.mark.parametrize("policy_name", sorted(_POLICIES))
@settings(max_examples=4, deadline=None)
@given(
    order=st.permutations(list(range(len(_PROMPTS)))),
    max_batch_size=st.integers(min_value=1, max_value=4),
    pool_pages=st.one_of(st.none(), st.integers(min_value=10, max_value=14)),
    frames=st.integers(min_value=2, max_value=5),
    backend=st.sampled_from(["compressed", "mmap"]),
    data=st.data(),
)
def test_offloaded_schedules_reproduce_reference_outputs(
    policy_name, kv_dtype, order, max_batch_size, pool_pages, frames, backend, data
):
    subset = order[: data.draw(st.integers(min_value=1, max_value=len(order)))]
    engine = ContinuousBatchingEngine(
        _MODEL,
        policy_factory=_POLICIES[policy_name],
        max_batch_size=max_batch_size,
        page_size=PAGE_SIZE,
        max_pool_tokens=None if pool_pages is None else pool_pages * PAGE_SIZE,
        kv_dtype=kv_dtype,
        enable_prefix_sharing=False,
        tier0_budget=_tier0_budget(kv_dtype, frames),
        spill_backend=backend,
    )
    states = [
        engine.submit(_PROMPTS[i], _CONFIG, sampler=GreedySampler()) for i in subset
    ]
    while engine.has_work:
        engine.step()
        engine.check_invariants()  # strict: raises on any violation
    for state, request_index in zip(states, subset):
        expected = _EXPECTED[(policy_name, kv_dtype)][request_index]
        assert state.tokens == expected.sequences[0]
        assert state.result().log_probs == expected.log_probs
        assert state.cache_stats.total_evicted == expected.cache_stats.total_evicted
    _assert_drained(engine)


def test_tight_budget_actually_spills():
    """The property above is vacuous unless cold pages really leave tier 0 —
    pin that a two-frame budget produces spill *and* restore traffic."""
    engine = ContinuousBatchingEngine(
        _MODEL,
        max_batch_size=2,
        page_size=PAGE_SIZE,
        max_pool_tokens=None,
        enable_prefix_sharing=False,
        tier0_budget=_tier0_budget(None, 2),
        spill_backend="compressed",
    )
    states = [engine.submit(p, _CONFIG, sampler=GreedySampler()) for p in _PROMPTS]
    engine.run()
    tier = engine.pool_usage()["tier"]
    assert tier["tier0_frames"] == 2
    assert tier["spills"] > 0 and tier["restores"] > 0
    assert tier["spill_bytes"] > 0 and tier["restore_bytes"] > 0
    for state, expected in zip(states, _EXPECTED[("full", None)]):
        assert state.tokens == expected.sequences[0]
        assert state.result().log_probs == expected.log_probs
    _assert_drained(engine)


@pytest.mark.parametrize("kv_dtype", [None, "int8"], ids=["fp64", "int8"])
def test_offload_prefix_sharing_is_bit_identical_to_no_offload(kv_dtype):
    """Shared-prefix serving (COW forks, registry pins) with offload on must
    match the same engine with offload off bit-for-bit — page sharing is
    logical, so which copies are resident cannot matter."""
    rng = np.random.default_rng(53)
    shared = rng.integers(0, VOCAB, size=32)
    prompts = [
        np.concatenate([shared, rng.integers(0, VOCAB, size=9 + i)]).astype(np.int64)
        for i in range(3)
    ]
    outputs = {}
    for offload in (False, True):
        engine = ContinuousBatchingEngine(
            _MODEL,
            policy_factory=_POLICIES["window"],
            max_batch_size=3,
            page_size=PAGE_SIZE,
            kv_dtype=kv_dtype,
            enable_prefix_sharing=True,
            tier0_budget=_tier0_budget(kv_dtype, 4) if offload else None,
            spill_backend="mmap" if offload else None,
        )
        states = [engine.submit(p, _CONFIG, sampler=GreedySampler()) for p in prompts]
        engine.run()
        outputs[offload] = [(s.tokens, s.result().log_probs) for s in states]
        if offload:
            assert engine.prefill_savings > 1.0  # pages were actually shared
            _assert_drained(engine)
    assert outputs[True] == outputs[False]


@pytest.mark.parametrize("kv_dtype", [None, "int8"], ids=["fp64", "int8"])
def test_offload_speculative_is_bit_identical_to_no_offload(kv_dtype):
    """Draft/verify/rollback on tiered pools: offload on vs off, bit for bit
    (speculation's own int8 tolerance contract is orthogonal — both sides of
    this comparison speculate identically)."""
    from repro.speculative import SpeculationConfig

    outputs = {}
    for offload in (False, True):
        engine = ContinuousBatchingEngine(
            _MODEL,
            max_batch_size=2,
            page_size=PAGE_SIZE,
            kv_dtype=kv_dtype,
            enable_prefix_sharing=False,
            speculation=SpeculationConfig(k=3, drafter="ngram"),
            tier0_budget=_tier0_budget(kv_dtype, 4) if offload else None,
            spill_backend="compressed" if offload else None,
        )
        states = [engine.submit(p, _CONFIG) for p in _PROMPTS]
        engine.run()
        outputs[offload] = [(s.tokens, s.result().log_probs) for s in states]
        if offload:
            _assert_drained(engine)
    assert outputs[True] == outputs[False]
