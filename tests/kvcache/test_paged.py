"""Unit tests for the paged block-pool store (`repro.kvcache.paged`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvcache.paged import (
    BlockPool,
    PagedKVStore,
    PageTable,
    PoolExhausted,
    PrefixRegistry,
)

H, D, PS = 2, 4, 8


def make_pool(n_pages=8, **kwargs):
    return BlockPool(H, D, page_size=PS, n_pages=n_pages, **kwargs)


def seeded(pool, t, rng=None, start_pos=0):
    rng = rng or np.random.default_rng(0)
    table = PageTable()
    keys = rng.normal(size=(H, t, D))
    values = rng.normal(size=(H, t, D))
    positions = np.broadcast_to(np.arange(start_pos, start_pos + t), (H, t)).copy()
    pool.extend(table, keys, values, positions)
    return table, keys, values, positions


class TestBlockPoolAllocation:
    def test_alloc_prefers_lowest_contiguous_run(self):
        pool = make_pool()
        pages = pool.alloc(3)
        assert pages == [0, 1, 2]
        assert pool.free_pages == 5
        pool.release([1])
        assert pool.alloc(1) == [1]

    def test_refcounts_and_release(self):
        pool = make_pool()
        (page,) = pool.alloc(1)
        pool.retain([page])
        assert pool.refcounts[page] == 2
        pool.release([page])
        assert pool.free_pages == 7  # still held once
        pool.release([page])
        assert pool.free_pages == 8

    def test_over_release_raises(self):
        pool = make_pool()
        (page,) = pool.alloc(1)
        pool.release([page])
        with pytest.raises(RuntimeError, match="released more"):
            pool.release([page])

    def test_growable_pool_grows(self):
        pool = make_pool(n_pages=2)
        pages = pool.alloc(5)
        assert len(pages) == 5
        assert pool.n_pages >= 5

    def test_fixed_pool_raises_pool_exhausted(self):
        pool = make_pool(n_pages=2, growable=False)
        pool.alloc(2)
        with pytest.raises(PoolExhausted):
            pool.alloc(1)

    def test_fixed_pool_consults_reclaimer(self):
        pool = make_pool(n_pages=2, growable=False)
        held = pool.alloc(2)

        def reclaimer(n):
            pool.release([held.pop()])
            return 1

        pool.reclaimer = reclaimer
        assert len(pool.alloc(1)) == 1


class TestExtendAppendGather:
    def test_extend_then_views_roundtrip(self):
        pool = make_pool()
        table, keys, values, positions = seeded(pool, 2 * PS + 3)
        np.testing.assert_array_equal(pool.keys_view(table), keys)
        np.testing.assert_array_equal(pool.values_view(table), values)
        np.testing.assert_array_equal(pool.positions_view(table), positions)
        # Contiguous ascending pages → zero-copy view of the slab.
        assert pool.keys_view(table).base is pool._k

    def test_append_crosses_page_boundary(self):
        pool = make_pool()
        table, keys, _, _ = seeded(pool, PS)
        assert len(table.pages) == 1
        k = np.full((H, D), 7.0)
        pool.append(table, k, k, position=PS)
        assert len(table.pages) == 2
        np.testing.assert_array_equal(pool.keys_view(table)[:, -1], k)

    def test_gather_suffix_is_offset_bump_and_frees_pages(self):
        pool = make_pool()
        table, keys, _, _ = seeded(pool, 3 * PS)
        free_before = pool.free_pages
        suffix = np.broadcast_to(np.arange(PS + 2, 3 * PS), (H, 2 * PS - 2))
        dropped = pool.gather(table, suffix)
        assert dropped == PS + 2
        assert pool.free_pages == free_before + 1  # one whole page skipped
        assert table.offset == 2
        np.testing.assert_array_equal(pool.keys_view(table), keys[:, PS + 2 :])

    def test_gather_scattered_compacts(self):
        rng = np.random.default_rng(3)
        pool = make_pool()
        table, keys, values, positions = seeded(pool, 20, rng)
        idx = np.sort(
            np.stack([rng.choice(20, size=9, replace=False) for _ in range(H)]), axis=-1
        )
        dropped = pool.gather(table, idx)
        assert dropped == 11
        for h in range(H):
            np.testing.assert_array_equal(pool.keys_view(table)[h], keys[h, idx[h]])
            np.testing.assert_array_equal(
                pool.positions_view(table)[h], positions[h, idx[h]]
            )

    def test_gather_to_empty_releases_everything(self):
        pool = make_pool()
        table, _, _, _ = seeded(pool, PS + 1)
        pool.gather(table, np.zeros((H, 0), dtype=np.int64))
        assert table.length == 0 and table.pages == []
        assert pool.free_pages == pool.n_pages

    def test_rotated_pages_match_reference(self):
        from repro.models.positional import rope_rotate

        pool = make_pool(rope_dims=D)
        rng = np.random.default_rng(4)
        table, keys, _, positions = seeded(pool, 11, rng)
        np.testing.assert_array_equal(
            pool.rotated_view(table), rope_rotate(keys, positions, D)
        )
        k = rng.normal(size=(H, D))
        pool.append(table, k, k, position=11)
        np.testing.assert_array_equal(
            pool.rotated_view(table)[:, -1],
            rope_rotate(k, np.full((H,), 11), D),
        )


class TestCopyOnWrite:
    def test_shared_page_append_cows(self):
        pool = make_pool()
        table, keys, _, _ = seeded(pool, 5)
        clone = table.clone()
        pool.retain(clone.pages)
        k = np.full((H, D), 3.0)
        pool.append(table, k, k, position=5)
        # The clone still sees the original 5 tokens, untouched.
        assert clone.length == 5
        np.testing.assert_array_equal(pool.keys_view(clone), keys)
        np.testing.assert_array_equal(pool.keys_view(table)[:, -1], k)
        assert table.pages != clone.pages

    def test_shared_page_gather_cows(self):
        rng = np.random.default_rng(5)
        pool = make_pool()
        table, keys, _, _ = seeded(pool, 10, rng)
        clone = table.clone()
        pool.retain(clone.pages)
        idx = np.broadcast_to(np.array([0, 2, 4, 6]), (H, 4))
        pool.gather(table, idx)
        np.testing.assert_array_equal(pool.keys_view(clone), keys)
        np.testing.assert_array_equal(pool.keys_view(table), keys[:, [0, 2, 4, 6]])

    def test_exclusive_gather_keeps_pages_in_place(self):
        pool = make_pool()
        table, _, _, _ = seeded(pool, 10)
        pages_before = list(table.pages)
        pool.gather(table, np.broadcast_to(np.array([0, 3, 5]), (H, 3)))
        assert table.pages == pages_before[:1]

    def test_shared_gather_surviving_pool_growth(self):
        """A copy-on-write gather whose allocation grows the pool must write
        the compacted data into the *new* slabs, not the orphaned old ones."""
        rng = np.random.default_rng(12)
        pool = make_pool(n_pages=3)  # exactly enough for the seed
        table, keys, _, _ = seeded(pool, 3 * PS, rng)
        clone = table.clone()
        pool.retain(clone.pages)  # shared → gather must allocate fresh pages
        old_k = pool._k
        idx = np.sort(
            np.stack([rng.choice(3 * PS, size=PS, replace=False) for _ in range(H)]),
            axis=-1,
        )
        pool.gather(table, idx)
        assert pool._k is not old_k  # the allocation grew the pool
        for h in range(H):
            np.testing.assert_array_equal(pool.keys_view(table)[h], keys[h, idx[h]])
        np.testing.assert_array_equal(pool.keys_view(clone), keys)


class TestPrefixRegistry:
    def _store(self, n_pages=16, growable=True):
        return PagedKVStore(
            2, H, D, page_size=PS, n_pages=n_pages, growable=growable
        )

    def _seed_store(self, store, tokens, rng):
        tables = []
        for pool in store.pools:
            table = PageTable()
            keys = rng.normal(size=(H, len(tokens), D))
            pos = np.broadcast_to(np.arange(len(tokens)), (H, len(tokens))).copy()
            pool.extend(table, keys, keys.copy(), pos)
            tables.append(table)
        return tables

    def test_register_then_match_page_aligned(self):
        rng = np.random.default_rng(6)
        store = self._store()
        registry = PrefixRegistry(store)
        tokens = rng.integers(0, 50, size=2 * PS + 5)
        tables = self._seed_store(store, tokens, rng)
        assert registry.register(tokens, tables) == 2  # two full pages
        match = registry.match(tokens)
        assert match.length == 2 * PS
        assert match.pages_per_layer[0] == tables[0].pages[:2]
        # A prompt sharing only the first page matches one chunk.
        other = np.concatenate([tokens[:PS], rng.integers(50, 99, size=PS)])
        match = registry.match(other)
        assert match.length == PS

    def test_match_respects_max_tokens_cap(self):
        rng = np.random.default_rng(7)
        store = self._store()
        registry = PrefixRegistry(store)
        tokens = rng.integers(0, 50, size=3 * PS)
        tables = self._seed_store(store, tokens, rng)
        registry.register(tokens, tables)
        match = registry.match(tokens, max_tokens=3 * PS - 2)
        assert match.length == 2 * PS  # page-aligned below the cap

    def test_no_match_without_full_page(self):
        rng = np.random.default_rng(8)
        store = self._store()
        registry = PrefixRegistry(store)
        tokens = rng.integers(0, 50, size=PS - 1)
        tables = self._seed_store(store, tokens, rng)
        assert registry.register(tokens, tables) == 0
        assert registry.match(tokens) is None

    def test_registered_pages_pinned_and_reclaimed_lru(self):
        rng = np.random.default_rng(9)
        store = self._store()
        registry = PrefixRegistry(store)
        tokens = rng.integers(0, 50, size=2 * PS)
        tables = self._seed_store(store, tokens, rng)
        registry.register(tokens, tables)
        for table, pool in zip(tables, store.pools):
            pool.release_table(table)  # the sequence retires…
        assert store.pools[0].free_pages < store.pools[0].n_pages  # …pages stay pinned
        assert registry.reclaimable_pages() == 2
        dropped = registry.reclaim(2)
        assert dropped == 2
        assert store.pools[0].free_pages == store.pools[0].n_pages

    def test_reclaim_drops_leaves_before_parents(self):
        rng = np.random.default_rng(10)
        store = self._store()
        registry = PrefixRegistry(store)
        tokens = rng.integers(0, 50, size=3 * PS)
        tables = self._seed_store(store, tokens, rng)
        registry.register(tokens, tables)
        for table, pool in zip(tables, store.pools):
            pool.release_table(table)
        registry.reclaim(1)
        # The newest (leaf) chunk went first; the chain stays matchable.
        match = registry.match(tokens)
        assert match.length == 2 * PS

    def test_reclaim_never_wastes_pinned_chunks(self):
        """Chunks mapped by live rows free no memory when dropped, so reclaim
        must leave them registered."""
        rng = np.random.default_rng(11)
        store = self._store()
        registry = PrefixRegistry(store)
        tokens = rng.integers(0, 50, size=2 * PS)
        tables = self._seed_store(store, tokens, rng)  # tables stay live
        registry.register(tokens, tables)
        assert registry.reclaimable_pages() == 0
        assert registry.reclaim(4) == 0
        assert len(registry) == 2
