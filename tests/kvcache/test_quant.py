"""Unit tests for the int8 quantized block pool (`repro.kvcache.quant`).

Covers the storage contract of `docs/quantization.md`: per-page round-trip
error bounds, exactness of degenerate ranges and positions, range widening on
append, re-quantization on eviction, copy-on-write isolation of shared
(prefix) pages, truncate/fork/restore rollback, and the byte accounting that
feeds admission and telemetry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvcache.cache import LayerKVCache
from repro.kvcache.paged import BlockPool, PagedKVStore, PageTable, resolve_pool_class
from repro.kvcache.quant import QMAX, QuantizedBlockPool

H, D, PS = 2, 4, 8


def make_pool(n_pages=8, **kwargs):
    kwargs.setdefault("dtype", np.float64)
    return QuantizedBlockPool(H, D, page_size=PS, n_pages=n_pages, **kwargs)


def seeded(pool, t, rng=None, start_pos=0):
    rng = rng or np.random.default_rng(0)
    table = PageTable()
    keys = rng.normal(size=(H, t, D))
    values = rng.normal(size=(H, t, D))
    positions = np.broadcast_to(np.arange(start_pos, start_pos + t), (H, t)).copy()
    pool.extend(table, keys, values, positions)
    return table, keys, values, positions


def per_element_bound(pool, table, name="k"):
    """Max dequantization error per element: half a step of its page's scale."""
    bound = np.empty((H, table.length, 1))
    for logical, page, _within, chunk in pool._page_chunks(table):
        bound[:, logical : logical + chunk] = (
            pool._qscale[name][page][:, None, None] * 0.5
        )
    # float32 parameter rounding adds a few ULPs on top of the half-step.
    return bound * 1.001 + 1e-7


class TestRoundTrip:
    def test_extend_roundtrip_within_half_step(self):
        pool = make_pool()
        table, keys, values, _ = seeded(pool, 3 * PS - 2)
        assert np.all(np.abs(pool.keys_view(table) - keys) <= per_element_bound(pool, table, "k"))
        assert np.all(
            np.abs(pool.values_view(table) - values) <= per_element_bound(pool, table, "v")
        )

    def test_positions_are_exact(self):
        pool = make_pool()
        table, _, _, positions = seeded(pool, 2 * PS + 3, start_pos=17)
        assert np.array_equal(pool.positions_view(table), positions)

    def test_constant_page_roundtrips_exactly(self):
        pool = make_pool()
        table = PageTable()
        # 0.75 is exactly representable in the float32 `zero` tensor, so a
        # degenerate (zero-width) range round-trips bit-exactly through it.
        keys = np.full((H, PS, D), 0.75)
        positions = np.broadcast_to(np.arange(PS), (H, PS)).copy()
        pool.extend(table, keys, keys.copy(), positions)
        assert np.array_equal(pool.keys_view(table), keys)

    def test_rotated_keys_within_half_step(self):
        pool = make_pool(rope_dims=D)
        table, keys, _, positions = seeded(pool, PS + 3)
        expected = pool.rope_table.rotate(keys, positions)
        assert np.all(
            np.abs(pool.rotated_view(table) - expected)
            <= per_element_bound(pool, table, "kr")
        )

    def test_codes_are_int8_in_range(self):
        pool = make_pool()
        table, _, _, _ = seeded(pool, PS)
        assert pool._k.dtype == np.int8
        live = pool._k[:, : table.length]
        assert live.min() >= -QMAX and live.max() <= QMAX

    def test_append_widening_keeps_resident_tokens_bounded(self):
        pool = make_pool()
        table = PageTable()
        rng = np.random.default_rng(1)
        small = 0.01 * rng.normal(size=(H, 3, D))
        positions = np.broadcast_to(np.arange(3), (H, 3)).copy()
        pool.extend(table, small, small.copy(), positions)
        # An outlier in the same page widens the range and re-encodes the
        # resident tokens; they must stay within the *new* half-step bound.
        outlier = np.full((H, D), 5.0)
        pool.append(table, outlier, outlier, 3)
        keys = pool.keys_view(table)
        bound = per_element_bound(pool, table, "k")
        assert np.all(np.abs(keys[:, :3] - small) <= 2 * bound[:, :3])
        assert np.all(np.abs(keys[:, 3] - outlier) <= bound[:, 3])

    def test_solo_and_batched_append_produce_identical_codes(self):
        a, b = make_pool(), make_pool()
        ta, keys, values, positions = seeded(a, PS)
        tb = PageTable()
        b.extend(tb, keys, values, positions)
        rng = np.random.default_rng(2)
        for i in range(5):
            k = rng.normal(size=(H, D))
            v = rng.normal(size=(H, D))
            a.append(ta, k, v, PS + i)
            b.append_rows([tb], k[None], v[None], np.asarray([PS + i]))
        assert np.array_equal(a.keys_view(ta), b.keys_view(tb))
        assert np.array_equal(a.values_view(ta), b.values_view(tb))


class TestEviction:
    def test_suffix_eviction_is_pure_bookkeeping(self):
        pool = make_pool()
        table, _, _, _ = seeded(pool, 3 * PS)
        before = pool.keys_view(table)
        indices = np.broadcast_to(np.arange(PS, 3 * PS), (H, 2 * PS))
        pool.gather(table, indices)
        assert table.offset == 0 and table.length == 2 * PS
        assert np.array_equal(pool.keys_view(table), before[:, PS:])

    def test_scatter_eviction_requantizes_within_bound(self):
        pool = make_pool()
        table, _, _, _ = seeded(pool, 3 * PS)
        before_k = pool.keys_view(table)
        before_v = pool.values_view(table)
        rng = np.random.default_rng(3)
        indices = np.stack(
            [np.sort(rng.choice(3 * PS, size=10, replace=False)) for _ in range(H)]
        )
        pool.gather(table, indices)
        rows = np.arange(H)[:, None]
        bound = per_element_bound(pool, table, "k")
        assert np.all(np.abs(pool.keys_view(table) - before_k[rows, indices]) <= bound)
        bound_v = per_element_bound(pool, table, "v")
        assert np.all(np.abs(pool.values_view(table) - before_v[rows, indices]) <= bound_v)

    def test_eviction_resets_destination_page_ranges(self):
        pool = make_pool()
        table = PageTable()
        rng = np.random.default_rng(4)
        data = 0.01 * rng.normal(size=(H, 2 * PS, D))
        data[:, -1] = 50.0  # one huge token widens the last page only
        positions = np.broadcast_to(np.arange(2 * PS), (H, 2 * PS)).copy()
        pool.extend(table, data, data.copy(), positions)
        keep = np.broadcast_to(np.arange(PS), (H, PS))  # drop the outlier
        pool.gather(table, keep)
        # Fresh destination ranges: the surviving small tokens re-quantize
        # with a tight scale, not the outlier-widened one.
        page = table.pages[0]
        assert np.all(pool._qscale["k"][page] < 0.01)


class TestSharedPages:
    def test_cloned_table_reads_identically_until_divergence(self):
        pool = make_pool()
        table, _, _, _ = seeded(pool, PS + 2)
        clone = table.clone()
        pool.retain(clone.pages)
        assert np.array_equal(pool.keys_view(table), pool.keys_view(clone))

    def test_copy_on_write_preserves_shared_page_params(self):
        pool = make_pool()
        table, _, _, _ = seeded(pool, PS + 2)
        clone = table.clone()
        pool.retain(clone.pages)
        before = pool.keys_view(clone)
        # Appending through the original COWs the shared boundary page and
        # must copy its quantization parameters along with the codes.
        outlier = np.full((H, D), 9.0)
        for i in range(PS):
            pool.append(table, outlier, outlier, PS + 2 + i)
        # The clone's reads must be bit-identical to before the divergence —
        # the outlier widened only the original's private COW copy.
        assert np.array_equal(pool.keys_view(clone), before)

    def test_page_tokens_view_dequantizes_full_pages(self):
        pool = make_pool(rope_dims=D)
        table, keys, values, _ = seeded(pool, 2 * PS)
        k, v = pool.page_tokens_view(table.pages[:2], rotated=False)
        assert k.shape == (H, 2 * PS, D)
        assert np.all(np.abs(v - values) <= per_element_bound(pool, table, "v"))


class TestTruncateForkRestore:
    def test_truncate_leaves_survivors_bit_identical(self):
        pool = make_pool()
        table, _, _, _ = seeded(pool, 2 * PS + 3)
        before = pool.keys_view(table)
        pool.truncate(table, PS + 1)
        assert np.array_equal(pool.keys_view(table), before[:, : PS + 2])

    def test_fork_restore_rolls_back_quantized_cache(self):
        pool = make_pool(rope_dims=D)
        rng = np.random.default_rng(5)
        cache = LayerKVCache.from_prompt(
            rng.normal(size=(1, H, PS + 2, D)),
            rng.normal(size=(1, H, PS + 2, D)),
            pool=pool,
            rope_dims=D,
        )
        snapshot_keys = cache.keys.copy()
        snapshot_rot = cache.rotated_keys().copy()
        forked = cache.fork_tables()
        for i in range(PS):
            kv = rng.normal(size=(1, H, D))
            cache.append(kv, kv.copy(), PS + 2 + i)
        cache.restore_tables(forked)
        assert np.array_equal(cache.keys, snapshot_keys)
        assert np.array_equal(cache.rotated_keys(), snapshot_rot)


class TestAccountingAndPlumbing:
    def test_int8_pool_is_smaller_than_full_precision(self):
        q = make_pool()
        fp = BlockPool(H, D, page_size=PS, n_pages=8, dtype=np.float64)
        assert q.kv_token_nbytes() < fp.kv_token_nbytes() / 4
        assert q.nbytes() < fp.nbytes()
        assert q.page_nbytes() < fp.page_nbytes()

    def test_store_usage_reports_bytes(self):
        store = PagedKVStore(2, H, D, page_size=PS, n_pages=4, kv_dtype="int8")
        usage = store.usage()
        assert usage["bytes_total"] == store.nbytes()
        assert usage["bytes_used"] == 0
        table = PageTable()
        store.pool(0).extend(
            table,
            np.zeros((H, PS, D)),
            np.zeros((H, PS, D)),
            np.zeros((H, PS), dtype=np.int64),
        )
        assert store.usage()["bytes_used"] > 0

    def test_resolve_pool_class(self):
        assert resolve_pool_class(None) is BlockPool
        assert resolve_pool_class("native") is BlockPool
        assert resolve_pool_class("int8") is QuantizedBlockPool
        with pytest.raises(ValueError, match="kv_dtype"):
            resolve_pool_class("fp4")

    def test_layer_cache_kv_dtype_knob_builds_quantized_pool(self):
        rng = np.random.default_rng(6)
        cache = LayerKVCache.from_prompt(
            rng.normal(size=(1, H, PS, D)),
            rng.normal(size=(1, H, PS, D)),
            kv_dtype="int8",
        )
        assert isinstance(cache.pool, QuantizedBlockPool)
        assert cache.nbytes() < 2 * H * PS * D * 8  # below float64 cost
        assert cache.keys.dtype == np.float64  # reads stay in compute dtype

    def test_page_nbytes_for_matches_pool_classes(self):
        fp = PagedKVStore.page_nbytes_for(None, H, D, PS, np.float64, D)
        q = PagedKVStore.page_nbytes_for("int8", H, D, PS, np.float64, D)
        assert fp == BlockPool.estimate_page_nbytes(H, D, PS, np.float64, D)
        assert q == QuantizedBlockPool.estimate_page_nbytes(H, D, PS, np.float64, D)
        assert q < fp

    def test_grown_pool_keeps_parameter_arrays_aligned(self):
        pool = make_pool(n_pages=2)
        table, keys, _, _ = seeded(pool, 6 * PS)  # forces repeated growth
        assert pool._qscale["k"].shape[0] == pool.n_pages
        assert np.all(
            np.abs(pool.keys_view(table) - keys) <= per_element_bound(pool, table, "k")
        )
