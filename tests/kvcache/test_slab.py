"""Tests for the slab-backed cache internals: preallocation, in-place append,
rotated-key caching, identity-gather skipping and dtype plumbing."""

import numpy as np
import pytest

from repro.kvcache.cache import LayerKVCache
from repro.models.positional import RopeTable, _rope_cos_sin, get_rope_table, rope_rotate

B, H, D = 1, 2, 8


def make_cache(t=6, **kwargs):
    rng = np.random.default_rng(0)
    keys = rng.normal(size=(B, H, t, D))
    values = rng.normal(size=(B, H, t, D))
    return LayerKVCache.from_prompt(keys, values, **kwargs), keys, values


class TestSlabStorage:
    def test_capacity_preallocated(self):
        cache, _, _ = make_cache(t=4, capacity=32)
        assert cache.capacity == 32
        assert cache.length == 4

    def test_append_is_in_place_until_capacity(self):
        cache, _, _ = make_cache(t=4, capacity=8)
        buffer_before = cache.keys.base
        k = np.ones((B, H, D))
        for i in range(4):
            cache.append(k, k, position=4 + i)
        assert cache.keys.base is buffer_before  # no reallocation happened
        assert cache.length == 8

    def test_capacity_doubles_when_exhausted(self):
        cache, _, _ = make_cache(t=4, capacity=4)
        cache.append(np.ones((B, H, D)), np.ones((B, H, D)), position=4)
        assert cache.length == 5
        assert cache.capacity >= 8
        np.testing.assert_array_equal(cache.positions[0, 0], [0, 1, 2, 3, 4])

    def test_gather_compacts_in_place(self):
        cache, keys, _ = make_cache(t=6, capacity=16)
        buffer_before = cache.keys.base
        cache.gather(np.array([0, 2, 5]))
        assert cache.keys.base is buffer_before
        np.testing.assert_allclose(cache.keys[0, 0], keys[0, 0, [0, 2, 5]])
        assert cache.total_evicted == 3

    def test_identity_gather_is_noop(self):
        cache, keys, _ = make_cache(t=6)
        cache.gather(np.arange(6))
        assert cache.total_evicted == 0
        np.testing.assert_allclose(cache.keys, keys)

    def test_read_only_position_views(self):
        cache, _, _ = make_cache(t=5)
        pos = cache.retained_original_positions()
        with pytest.raises(ValueError):
            pos[0, 0, 0] = 99
        renum = cache.renumbered_positions()
        with pytest.raises(ValueError):
            renum[0, 0, 0] = 99

    def test_float32_storage(self):
        cache, _, _ = make_cache(t=4, dtype="float32")
        assert cache.keys.dtype == np.float32
        cache.append(np.ones((B, H, D)), np.ones((B, H, D)), position=4)
        assert cache.keys.dtype == np.float32


class TestRotatedKeyCache:
    def _rotated_reference(self, cache):
        return rope_rotate(np.asarray(cache.keys), np.asarray(cache.positions), D)

    def test_rotated_matches_full_rotation(self):
        cache, _, _ = make_cache(t=6, rope_dims=D, capacity=16)
        np.testing.assert_array_equal(cache.rotated_keys(), self._rotated_reference(cache))

    def test_rotated_stays_valid_across_append_and_gather(self):
        cache, _, _ = make_cache(t=6, rope_dims=D, capacity=16)
        cache.rotated_keys()
        cache.append(np.ones((B, H, D)), np.ones((B, H, D)), position=6)
        np.testing.assert_array_equal(cache.rotated_keys(), self._rotated_reference(cache))
        # Per-head eviction: heads keep different token sets.
        idx = np.stack([[np.array([0, 2, 4, 6]), np.array([1, 3, 5, 6])]])
        cache.gather(idx)
        np.testing.assert_array_equal(cache.rotated_keys(), self._rotated_reference(cache))

    def test_rotation_invalidated_when_gather_precedes_rotation(self):
        cache, _, _ = make_cache(t=6, rope_dims=D, capacity=16)
        # Gather before the rotated slab was ever built: lazily recomputed.
        cache.gather(np.array([1, 3, 5]))
        np.testing.assert_array_equal(cache.rotated_keys(), self._rotated_reference(cache))

    def test_disabled_without_rope_dims(self):
        cache, _, _ = make_cache(t=4)
        with pytest.raises(RuntimeError):
            cache.rotated_keys()

    def test_reorder_keeps_rotated_consistent(self):
        rng = np.random.default_rng(1)
        keys = rng.normal(size=(3, H, 5, D))
        cache = LayerKVCache.from_prompt(keys, keys.copy(), rope_dims=D)
        cache.rotated_keys()
        cache.reorder(np.array([2, 0, 1]))
        np.testing.assert_array_equal(cache.rotated_keys(), self._rotated_reference(cache))


class TestRopeTable:
    def test_matches_direct_computation(self):
        table = RopeTable(D, initial_capacity=4)
        positions = np.array([0, 3, 17, 200])
        cos, sin = table.cos_sin(positions)
        ref_cos, ref_sin = _rope_cos_sin(positions, D)
        np.testing.assert_array_equal(cos, ref_cos)
        np.testing.assert_array_equal(sin, ref_sin)

    def test_grows_on_demand(self):
        table = RopeTable(D, initial_capacity=8)
        start = table.capacity
        table.cos_sin(np.array([10 * start]))
        assert table.capacity >= 10 * start + 1

    def test_rotate_matches_rope_rotate(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(B, H, 5, D))
        positions = rng.integers(0, 50, size=(B, H, 5))
        table = get_rope_table(D)
        np.testing.assert_array_equal(
            table.rotate(x, positions), rope_rotate(x, positions, D)
        )

    def test_rotate_uniform_matches_rotate(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(B, H, D))
        table = get_rope_table(D)
        uniform = table.rotate_uniform(x, 7)
        general = table.rotate(x, np.full((B, H), 7))
        np.testing.assert_array_equal(uniform, general)

    def test_float32_lookup_matches_cast(self):
        table = RopeTable(D, initial_capacity=16)
        x = np.random.default_rng(4).normal(size=(B, H, D)).astype(np.float32)
        out = table.rotate_uniform(x, 3)
        assert out.dtype == np.float32
        ref = rope_rotate(x, np.full((B, H), 3), D)
        np.testing.assert_allclose(out, ref.astype(np.float32), rtol=1e-6)
