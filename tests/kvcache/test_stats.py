"""Tests for cache statistics accounting."""

import numpy as np

from repro.kvcache.stats import CacheStats


class TestCacheStats:
    def make(self):
        stats = CacheStats(n_layers=2, n_heads=4, d_head=8, batch_size=1, prompt_len=10)
        stats.record_step([10, 10])
        stats.record_step([10, 10])
        stats.record_step([12, 12])
        return stats

    def test_step_counts(self):
        stats = self.make()
        assert stats.n_steps == 3
        assert stats.peak_cache_length() == 12
        np.testing.assert_allclose(stats.mean_cache_length(), (10 + 10 + 12) / 3)

    def test_kv_entries_and_bytes(self):
        stats = self.make()
        assert stats.kv_entries_read() == 2 * (10 + 10 + 12)
        # bytes per entry = 2 tensors * 4 heads * 8 dims * 2 bytes = 128
        assert stats.kv_bytes_read(2) == stats.kv_entries_read() * 128

    def test_peak_bytes(self):
        stats = self.make()
        assert stats.peak_kv_bytes(2) == 12 * 128 * 2  # peak length * per-entry * layers

    def test_eviction_rate(self):
        stats = self.make()
        stats.total_appended = 100
        stats.total_evicted = 25
        assert stats.eviction_rate() == 0.25

    def test_empty_stats(self):
        stats = CacheStats()
        assert stats.mean_cache_length() == 0.0
        assert stats.peak_cache_length() == 0
        assert stats.kv_entries_read() == 0
        assert stats.eviction_rate() == 0.0

    def test_summary_keys(self):
        summary = self.make().summary()
        for key in ("n_steps", "mean_cache_length", "peak_cache_length", "kv_entries_read"):
            assert key in summary
