"""Rollback primitives: pool truncate, table forking, mapped seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvcache.cache import LayerKVCache
from repro.kvcache.paged import BlockPool, PageTable


def _pool(**kwargs):
    defaults = dict(n_heads=2, d_head=4, page_size=4, n_pages=16, rope_dims=0)
    defaults.update(kwargs)
    return BlockPool(**defaults)


def _seed(pool, n_tokens, value=1.0):
    table = PageTable()
    keys = np.full((pool.n_heads, n_tokens, pool.d_head), value)
    positions = np.broadcast_to(np.arange(n_tokens), (pool.n_heads, n_tokens))
    pool.extend(table, keys, keys.copy(), positions)
    return table


class TestPoolTruncate:
    def test_truncate_frees_trailing_pages(self):
        pool = _pool()
        table = _seed(pool, 10)  # 3 pages (4+4+2)
        free_before = pool.free_pages
        pool.truncate(table, 5)
        assert table.length == 5
        assert len(table.pages) == 2
        assert pool.free_pages == free_before + 1

    def test_truncate_within_page_keeps_it(self):
        pool = _pool()
        table = _seed(pool, 8)
        pool.truncate(table, 1)
        assert table.length == 7
        assert len(table.pages) == 2

    def test_truncate_to_zero_releases_table(self):
        pool = _pool()
        table = _seed(pool, 6)
        pool.truncate(table, 6)
        assert table.length == 0 and table.pages == [] and table.offset == 0
        assert pool.used_pages == 0

    def test_truncate_respects_offset(self):
        pool = _pool()
        table = _seed(pool, 12)
        # Suffix-evict 5 tokens: offset bumps to 1 after freeing one page.
        keep = np.broadcast_to(np.arange(5, 12), (pool.n_heads, 7))
        pool.gather(table, keep)
        assert table.offset == 1
        pool.truncate(table, 4)
        assert table.length == 3
        assert len(table.pages) == 1

    def test_truncate_shared_page_only_drops_refcount(self):
        pool = _pool()
        table = _seed(pool, 8)
        clone = table.clone()
        pool.retain(clone.pages)
        pool.truncate(table, 8)
        # The clone still owns the pages; nothing came free.
        assert pool.used_pages == 2
        assert (pool.refcounts[clone.pages] == 1).all()

    def test_truncate_overshoot_raises(self):
        pool = _pool()
        table = _seed(pool, 4)
        with pytest.raises(ValueError):
            pool.truncate(table, 5)

    def test_append_after_truncate_overwrites(self):
        pool = _pool(rope_dims=4)
        table = _seed(pool, 6, value=1.0)
        pool.truncate(table, 2)
        pool.append(table, np.full((2, 4), 9.0), np.full((2, 4), 9.0), position=4)
        keys = pool.keys_view(table)
        assert table.length == 5
        np.testing.assert_array_equal(keys[:, -1], np.full((2, 4), 9.0))
        np.testing.assert_array_equal(pool.positions_view(table)[:, -1], [4, 4])


class TestForkRestore:
    def _cache(self, n_tokens=10):
        keys = np.arange(2 * n_tokens * 4, dtype=np.float64).reshape(1, 2, n_tokens, 4)
        return LayerKVCache.from_prompt(keys, keys.copy(), page_size=4)

    def test_fork_restore_roundtrip(self):
        cache = self._cache()
        snapshot = cache.fork_tables()
        before = cache.keys.copy()
        cache.append(np.full((1, 2, 4), 5.0), np.full((1, 2, 4), 5.0), position=10)
        cache.gather(np.arange(4, 11))
        cache.restore_tables(snapshot)
        np.testing.assert_array_equal(cache.keys, before)
        assert cache.length == 10

    def test_fork_protects_pages_from_in_place_eviction(self):
        cache = self._cache()
        snapshot = cache.fork_tables()
        before = cache.keys.copy()
        # A scattered eviction would normally compact in place; the forked
        # tables share the pages, so copy-on-write must route it elsewhere.
        cache.gather(np.asarray([0, 2, 4, 6, 8]))
        cache.restore_tables(snapshot)
        np.testing.assert_array_equal(cache.keys, before)

    def test_discard_returns_pages(self):
        cache = self._cache()
        used = cache.pool.used_pages
        snapshot = cache.fork_tables()
        cache.discard_tables(snapshot)
        assert cache.pool.used_pages == used

    def test_restore_wrong_rows_raises(self):
        cache = self._cache()
        with pytest.raises(ValueError):
            cache.restore_tables([])


class TestMapTables:
    def test_mapped_cache_shares_pages_until_divergence(self):
        pool = _pool()
        source = _seed(pool, 8)
        mapped = LayerKVCache.map_tables(pool, [source])
        assert mapped.tables[0].pages == source.pages
        assert (pool.refcounts[source.pages] == 2).all()
        np.testing.assert_array_equal(mapped.keys[0], pool.keys_view(source))
        # Divergent write: the mapped cache appends, copy-on-write splits.
        mapped.append(np.zeros((1, 2, 4)), np.zeros((1, 2, 4)), position=8)
        source_view = pool.keys_view(source).copy()
        mapped.gather(np.asarray([0, 1, 2, 3]))
        np.testing.assert_array_equal(pool.keys_view(source), source_view)

    def test_map_tables_trims_reserve_pages(self):
        pool = _pool()
        table = PageTable()
        keys = np.zeros((2, 6, 4))
        positions = np.broadcast_to(np.arange(6), (2, 6))
        pool.extend(table, keys, keys.copy(), positions, reserve_tokens=20)
        assert len(table.pages) == 5  # 6 live tokens + reserve
        mapped = LayerKVCache.map_tables(pool, [table])
        # Only the pages covering live tokens are mapped: the source's
        # reserve tail stays exclusively its own (in-place appends, no COW).
        assert len(mapped.tables[0].pages) == 2
        assert pool.refcounts[table.pages[2]] == 1
