"""Tests for perplexity, multiple-choice accuracy and attention statistics."""

import numpy as np
import pytest

from repro.metrics.accuracy import multiple_choice_accuracy, pick_option
from repro.metrics.attention_stats import (
    attention_score_cdf,
    attention_sparsity,
    cumulative_attention_mass,
    head_sparsity_by_threshold,
)
from repro.metrics.perplexity import corpus_perplexity, sequence_perplexity
from repro.models.tensor_ops import softmax


class TestPerplexity:
    def test_uniform_logits_give_vocab_size(self):
        logits = np.zeros((5, 16))
        targets = np.arange(5)
        assert sequence_perplexity(logits, targets) == pytest.approx(16.0)

    def test_perfect_prediction_gives_one(self):
        logits = np.full((4, 8), -30.0)
        targets = np.array([1, 3, 5, 7])
        logits[np.arange(4), targets] = 30.0
        assert sequence_perplexity(logits, targets) == pytest.approx(1.0, abs=1e-6)

    def test_ignored_positions(self):
        logits = np.zeros((3, 4))
        targets = np.array([0, -100, 2])
        assert sequence_perplexity(logits, targets) == pytest.approx(4.0)

    def test_all_masked_raises(self):
        with pytest.raises(ValueError):
            sequence_perplexity(np.zeros((2, 4)), np.array([-100, -100]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sequence_perplexity(np.zeros((2, 4)), np.array([0, 1, 2]))

    def test_corpus_perplexity(self):
        # Two sequences of 10 tokens each with total logprob -10 each:
        # ppl = exp(20 / 20) = e.
        assert corpus_perplexity([-10.0, -10.0], [10, 10]) == pytest.approx(np.e)

    def test_corpus_perplexity_validation(self):
        with pytest.raises(ValueError):
            corpus_perplexity([], [])
        with pytest.raises(ValueError):
            corpus_perplexity([-1.0], [0])


class TestAccuracy:
    def test_pick_option(self):
        assert pick_option([-5.0, -1.0, -3.0]) == 1

    def test_pick_option_length_normalized(self):
        # Option 0 has better total but option 1 is better per token.
        assert pick_option([-2.0, -3.0], normalize_by_length=[1, 6]) == 1

    def test_pick_option_validation(self):
        with pytest.raises(ValueError):
            pick_option([])
        with pytest.raises(ValueError):
            pick_option([-1.0, -2.0], normalize_by_length=[1])

    def test_accuracy(self):
        assert multiple_choice_accuracy([0, 1, 1, 0], [0, 1, 0, 0]) == 75.0

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            multiple_choice_accuracy([], [])
        with pytest.raises(ValueError):
            multiple_choice_accuracy([1], [1, 2])


def make_attention(rng, t=16, peaked=False):
    logits = rng.normal(size=(1, 2, t, t))
    if peaked:
        logits[..., 0] += 8.0  # all mass to the first token
    mask = np.triu(np.ones((t, t), dtype=bool), k=1)
    logits = np.where(mask[None, None], -np.inf, logits)
    return softmax(logits, axis=-1)


class TestAttentionStats:
    def test_sparsity_in_bounds(self, rng):
        attn = make_attention(rng)
        value = attention_sparsity(attn, threshold=0.01)
        assert 0.0 <= value <= 100.0

    def test_sparsity_monotone_in_threshold(self, rng):
        attn = make_attention(rng)
        low = attention_sparsity(attn, threshold=0.001)
        high = attention_sparsity(attn, threshold=0.05)
        assert high >= low

    def test_peaked_attention_is_sparser(self, rng):
        uniform = make_attention(rng, peaked=False)
        peaked = make_attention(rng, peaked=True)
        assert attention_sparsity(peaked, 0.05) > attention_sparsity(uniform, 0.05)

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            attention_sparsity(np.zeros((3, 4, 4)))

    def test_cumulative_mass_monotone_and_bounded(self, rng):
        attn = make_attention(rng)
        mass = cumulative_attention_mass(attn, [0.1, 0.3, 0.5, 0.9])
        assert all(0.0 <= m <= 1.0 + 1e-9 for m in mass)
        assert all(b >= a - 1e-9 for a, b in zip(mass, mass[1:]))
        assert mass[-1] > 0.85

    def test_peaked_attention_concentrates_mass(self, rng):
        peaked = make_attention(rng, peaked=True)
        uniform = make_attention(rng, peaked=False)
        assert (
            cumulative_attention_mass(peaked, [0.2])[0]
            > cumulative_attention_mass(uniform, [0.2])[0]
        )

    def test_cdf_output_aligned(self, rng):
        fractions, mass = attention_score_cdf(make_attention(rng), n_points=9)
        assert len(fractions) == len(mass) == 9
        assert fractions[0] == pytest.approx(0.1)

    def test_threshold_sweep_structure(self, rng):
        layers = [make_attention(rng), make_attention(rng)]
        sweep = head_sparsity_by_threshold(layers, [0.0, 0.01])
        assert set(sweep) == {0.0, 0.01}
        assert len(sweep[0.0]) == 2
