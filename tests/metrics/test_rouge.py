"""Tests for the from-scratch ROUGE implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.rouge import RougeScore, aggregate_rouge, rouge_all, rouge_l, rouge_n

sentences = st.lists(
    st.sampled_from(["alice", "bob", "likes", "chess", "paris", "visited", "the", "report"]),
    min_size=1,
    max_size=12,
).map(" ".join)


class TestRougeN:
    def test_identical_texts_score_one(self):
        score = rouge_n("the cat sat on the mat", "the cat sat on the mat", 2)
        assert score.f1 == pytest.approx(1.0)
        assert score.precision == pytest.approx(1.0)
        assert score.recall == pytest.approx(1.0)

    def test_disjoint_texts_score_zero(self):
        assert rouge_n("aaa bbb", "ccc ddd", 1).f1 == 0.0

    def test_hand_computed_unigram(self):
        # candidate: {the, cat, sat}; reference: {the, cat, slept, soundly}
        # overlap = 2, precision = 2/3, recall = 2/4
        score = rouge_n("the cat sat", "the cat slept soundly", 1)
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(0.5)
        assert score.f1 == pytest.approx(2 * (2 / 3) * 0.5 / (2 / 3 + 0.5))

    def test_hand_computed_bigram(self):
        score = rouge_n("the cat sat on the mat", "the cat lay on the mat", 2)
        # candidate bigrams: 5, reference bigrams: 5, overlap: {the cat, on the, the mat} = 3
        assert score.precision == pytest.approx(3 / 5)
        assert score.recall == pytest.approx(3 / 5)

    def test_duplicate_ngrams_clipped(self):
        score = rouge_n("the the the", "the cat", 1)
        assert score.precision == pytest.approx(1 / 3)
        assert score.recall == pytest.approx(1 / 2)

    def test_empty_candidate(self):
        assert rouge_n("", "reference text", 1) == RougeScore.zero()

    def test_short_text_has_no_bigrams(self):
        assert rouge_n("word", "word", 2) == RougeScore.zero()

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            rouge_n("a", "a", 0)

    def test_case_insensitive(self):
        assert rouge_n("The CAT", "the cat", 1).f1 == pytest.approx(1.0)


class TestRougeL:
    def test_identical(self):
        assert rouge_l("a b c d", "a b c d").f1 == pytest.approx(1.0)

    def test_subsequence_not_substring(self):
        # LCS of "a x b y c" and "a b c" is "a b c" (length 3).
        score = rouge_l("a x b y c", "a b c")
        assert score.recall == pytest.approx(1.0)
        assert score.precision == pytest.approx(3 / 5)

    def test_order_matters(self):
        forward = rouge_l("a b c", "a b c").f1
        backward = rouge_l("c b a", "a b c").f1
        assert backward < forward

    def test_empty(self):
        assert rouge_l("", "a b").f1 == 0.0


class TestAggregate:
    def test_aggregate_scaled_to_percentage(self):
        scores = aggregate_rouge(["a b c"], ["a b c"])
        assert scores["rouge1"] == pytest.approx(100.0)
        assert scores["rouge2"] == pytest.approx(100.0)
        assert scores["rougeL"] == pytest.approx(100.0)

    def test_mean_over_corpus(self):
        scores = aggregate_rouge(["a b", "x y"], ["a b", "a b"])
        assert scores["rouge1"] == pytest.approx(50.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            aggregate_rouge(["a"], ["a", "b"])

    def test_empty_corpus(self):
        with pytest.raises(ValueError):
            aggregate_rouge([], [])

    def test_rouge_all_keys(self):
        assert set(rouge_all("a b", "a c")) == {"rouge1", "rouge2", "rougeL"}

    @given(sentences, sentences)
    @settings(max_examples=40, deadline=None)
    def test_property_scores_bounded_and_symmetric_f1(self, cand, ref):
        scores = rouge_all(cand, ref)
        for score in scores.values():
            assert 0.0 <= score.f1 <= 1.0
            assert 0.0 <= score.precision <= 1.0
            assert 0.0 <= score.recall <= 1.0
        # Swapping candidate and reference swaps precision/recall but keeps F1.
        swapped = rouge_all(ref, cand)
        assert scores["rouge1"].f1 == pytest.approx(swapped["rouge1"].f1)
        assert scores["rougeL"].f1 == pytest.approx(swapped["rougeL"].f1)

    @given(sentences)
    @settings(max_examples=20, deadline=None)
    def test_property_identity_is_perfect(self, text):
        assert rouge_all(text, text)["rouge1"].f1 == pytest.approx(1.0)
