"""Tests for multi-head attention: masking, gradients and decode-path equivalence."""

import numpy as np
import pytest

from repro.models.attention import MultiHeadAttention
from tests.conftest import tiny_config


def make_attention(positional="rope", seed=0):
    config = tiny_config(positional)
    return MultiHeadAttention(config, np.random.default_rng(seed)), config


class TestForward:
    @pytest.mark.parametrize("positional", ["rope", "alibi", "learned", "none"])
    def test_output_shape(self, positional, rng):
        attn, config = make_attention(positional)
        x = rng.normal(size=(2, 6, config.d_model))
        out = attn(x)
        assert out.shape == x.shape

    def test_causality(self, rng):
        """Changing a future token must not affect earlier outputs."""
        attn, config = make_attention("rope")
        x = rng.normal(size=(1, 8, config.d_model))
        out_a = attn(x).copy()
        x_mod = x.copy()
        x_mod[0, -1] += 10.0
        out_b = attn(x_mod)
        np.testing.assert_allclose(out_a[0, :-1], out_b[0, :-1], atol=1e-10)
        assert not np.allclose(out_a[0, -1], out_b[0, -1])

    def test_attention_rows_are_distributions(self, rng):
        attn, config = make_attention("alibi")
        x = rng.normal(size=(1, 5, config.d_model))
        attn(x, store_attention=True)
        probs = attn.last_attention
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
        # Upper triangle must be exactly zero (masked).
        t = probs.shape[-1]
        mask = np.triu(np.ones((t, t), dtype=bool), k=1)
        assert np.all(probs[..., mask] == 0.0)

    def test_store_attention_keeps_kv_and_scores(self, rng):
        attn, config = make_attention("rope")
        x = rng.normal(size=(2, 4, config.d_model))
        attn(x, store_attention=True)
        k_raw, v = attn.last_kv
        assert k_raw.shape == (2, config.n_heads, 4, config.d_head)
        assert v.shape == k_raw.shape
        assert attn.last_scores.shape == (2, config.n_heads, 4, 4)

    def test_backward_input_gradient_matches_fd(self, rng):
        attn, config = make_attention("rope")
        x = rng.normal(size=(1, 3, config.d_model))
        upstream = rng.normal(size=(1, 3, config.d_model))

        def scalar(inp):
            return float(np.sum(attn.forward(inp) * upstream))

        attn.zero_grad()
        attn.forward(x)
        dx = attn.backward(upstream)

        eps = 1e-5
        numeric = np.zeros_like(x)
        flat_x = x.reshape(-1)
        flat_num = numeric.reshape(-1)
        for i in range(0, flat_x.size, 7):  # sample every 7th coordinate for speed
            orig = flat_x[i]
            flat_x[i] = orig + eps
            plus = scalar(x)
            flat_x[i] = orig - eps
            minus = scalar(x)
            flat_x[i] = orig
            flat_num[i] = (plus - minus) / (2 * eps)
        sampled = flat_num != 0
        np.testing.assert_allclose(dx.reshape(-1)[sampled], flat_num[sampled], atol=1e-5)


class TestDecodeStep:
    @pytest.mark.parametrize("positional", ["rope", "alibi", "learned"])
    def test_decode_matches_full_forward_last_row(self, positional, rng):
        """Attending a single query over cached keys must reproduce the last row
        of the full-sequence attention output."""
        attn, config = make_attention(positional)
        t = 6
        x = rng.normal(size=(1, t, config.d_model))
        full_out = attn(x, store_attention=True)
        k_raw, v = attn.last_kv

        q, k_new, v_new = attn.project_qkv(x[:, -1, :])
        np.testing.assert_allclose(k_new, k_raw[:, :, -1, :], atol=1e-10)

        key_positions = np.broadcast_to(np.arange(t), (1, config.n_heads, t))
        out, logits, probs = attn.attend_step(q, k_raw, v, t - 1, key_positions)
        np.testing.assert_allclose(out, full_out[:, -1, :], atol=1e-8)
        np.testing.assert_allclose(probs[0], attn.last_attention[0, :, -1, :], atol=1e-8)

    def test_logits_match_stored_scores(self, rng):
        attn, config = make_attention("alibi")
        t = 5
        x = rng.normal(size=(1, t, config.d_model))
        attn(x, store_attention=True)
        k_raw, v = attn.last_kv
        q, _, _ = attn.project_qkv(x[:, -1, :])
        key_positions = np.broadcast_to(np.arange(t), (1, config.n_heads, t))
        _, logits, _ = attn.attend_step(q, k_raw, v, t - 1, key_positions)
        np.testing.assert_allclose(logits[0], attn.last_scores[0, :, -1, :], atol=1e-8)

    def test_project_qkv_rejects_bad_shape(self, rng):
        attn, config = make_attention("rope")
        with pytest.raises(ValueError):
            attn.project_qkv(rng.normal(size=(1, 3, config.d_model)))

    def test_subset_of_keys_changes_output(self, rng):
        attn, config = make_attention("rope")
        t = 8
        x = rng.normal(size=(1, t, config.d_model))
        attn(x, store_attention=True)
        k_raw, v = attn.last_kv
        q, _, _ = attn.project_qkv(x[:, -1, :])
        all_pos = np.broadcast_to(np.arange(t), (1, config.n_heads, t))
        full, _, _ = attn.attend_step(q, k_raw, v, t - 1, all_pos)
        subset = np.arange(t - 3, t)
        sub_pos = np.broadcast_to(subset, (1, config.n_heads, 3))
        reduced, _, probs = attn.attend_step(
            q, k_raw[:, :, subset, :], v[:, :, subset, :], t - 1, sub_pos
        )
        assert not np.allclose(full, reduced)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
