"""Row-exactness of the batched decode kernels.

BLAS matmul kernels choose different reduction orders for different batch
sizes, so ``(B, d) @ W`` is not bitwise row-equal to ``(1, d) @ W``.  The
batched decode path therefore routes every float64 projection through
row-exact kernels (``Linear.forward_rows`` et al.).  These tests pin the
bitwise contract each kernel relies on — if a NumPy/BLAS upgrade ever breaks
the single-row-kernel equivalence, they fail loudly rather than letting the
serving engine silently lose bit parity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.attention import MultiHeadAttention
from repro.models.config import ModelConfig
from repro.models.layers import Linear
from repro.models.mlp import MLP
from repro.models.transformer import DecoderLM


def _config(positional="rope", **overrides) -> ModelConfig:
    defaults = dict(
        vocab_size=64,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=128,
        positional=positional,
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


class TestRowExactKernels:
    def test_linear_forward_rows_bitwise(self):
        rng = np.random.default_rng(0)
        layer = Linear(32, 48, rng)
        x = rng.normal(size=(5, 32))
        batched = layer.forward_rows(x)
        for b in range(5):
            np.testing.assert_array_equal(batched[b : b + 1], layer.forward(x[b : b + 1]))

    def test_mlp_forward_rows_bitwise(self):
        rng = np.random.default_rng(1)
        mlp = MLP(_config(), rng)
        x = rng.normal(size=(4, 32))
        batched = mlp.forward_rows(x)
        for b in range(4):
            np.testing.assert_array_equal(batched[b : b + 1], mlp.forward(x[b : b + 1]))

    def test_project_qkv_rows_bitwise(self):
        rng = np.random.default_rng(2)
        attn = MultiHeadAttention(_config(), rng)
        x = rng.normal(size=(4, 32))
        q, k, v = attn.project_qkv_rows(x)
        for b in range(4):
            q1, k1, v1 = attn.project_qkv(x[b : b + 1])
            np.testing.assert_array_equal(q[b : b + 1], q1)
            np.testing.assert_array_equal(k[b : b + 1], k1)
            np.testing.assert_array_equal(v[b : b + 1], v1)

    @pytest.mark.parametrize("tie", [True, False])
    def test_lm_logits_rows_bitwise(self, tie):
        model = DecoderLM(_config(tie_embeddings=tie), seed=0)
        hidden = np.random.default_rng(3).normal(size=(4, 32))
        batched = model.lm_logits_rows(hidden)
        for b in range(4):
            np.testing.assert_array_equal(
                batched[b : b + 1], model.lm_logits(hidden[b : b + 1])
            )


class TestAttendStepBatch:
    @pytest.mark.parametrize("positional", ["rope", "alibi", "none"])
    def test_ragged_rows_bitwise_equal_solo_attention(self, positional):
        """Each row of the padded ragged attention step must match the
        single-sequence ``attend_step`` on that row's exact-length cache."""
        rng = np.random.default_rng(4)
        attn = MultiHeadAttention(_config(positional), rng)
        batch, heads, d_head = 4, attn.n_heads, attn.d_head
        lengths = np.asarray([9, 5, 12, 7])
        max_len = int(lengths.max())
        q = rng.normal(size=(batch, heads, d_head))
        keys = rng.normal(size=(batch, heads, max_len, d_head))
        values = rng.normal(size=(batch, heads, max_len, d_head))
        key_positions = np.broadcast_to(np.arange(max_len), (batch, heads, max_len))
        query_positions = lengths - 1

        out, logits, probs = attn.attend_step_batch(
            q, keys, values, query_positions, key_positions, lengths
        )
        for b in range(batch):
            live = int(lengths[b])
            solo_out, solo_logits, solo_probs = attn.attend_step(
                q[b : b + 1],
                keys[b : b + 1, :, :live],
                values[b : b + 1, :, :live],
                np.asarray(int(query_positions[b])),
                key_positions[b : b + 1, :, :live],
            )
            np.testing.assert_array_equal(out[b : b + 1], solo_out)
            np.testing.assert_array_equal(logits[b, :, :live], solo_logits[0])
            np.testing.assert_array_equal(probs[b, :, :live], solo_probs[0])

    def test_equal_length_fast_path_bitwise(self):
        """The no-padding batched softmax path must equal the per-row loop."""
        rng = np.random.default_rng(5)
        attn = MultiHeadAttention(_config("rope"), rng)
        batch, heads, d_head = 3, attn.n_heads, attn.d_head
        length = 8
        lengths = np.full(batch, length)
        q = rng.normal(size=(batch, heads, d_head))
        keys = rng.normal(size=(batch, heads, length, d_head))
        values = rng.normal(size=(batch, heads, length, d_head))
        key_positions = np.broadcast_to(np.arange(length), (batch, heads, length))
        query_positions = np.asarray([7, 9, 11])
        out, logits, probs = attn.attend_step_batch(
            q, keys, values, query_positions, key_positions, lengths
        )
        for b in range(batch):
            solo_out, solo_logits, solo_probs = attn.attend_step(
                q[b : b + 1],
                keys[b : b + 1],
                values[b : b + 1],
                np.asarray(int(query_positions[b])),
                key_positions[b : b + 1],
            )
            np.testing.assert_array_equal(out[b : b + 1], solo_out)
            np.testing.assert_array_equal(logits[b], solo_logits[0])
            np.testing.assert_array_equal(probs[b], solo_probs[0])

    def test_float32_masks_padding(self):
        rng = np.random.default_rng(6)
        attn = MultiHeadAttention(_config("none", compute_dtype="float32"), rng)
        batch, heads, d_head = 2, attn.n_heads, attn.d_head
        lengths = np.asarray([3, 6])
        q = rng.normal(size=(batch, heads, d_head)).astype(np.float32)
        keys = rng.normal(size=(batch, heads, 6, d_head)).astype(np.float32)
        values = rng.normal(size=(batch, heads, 6, d_head)).astype(np.float32)
        key_positions = np.broadcast_to(np.arange(6), (batch, heads, 6))
        out, logits, probs = attn.attend_step_batch(
            q, keys, values, lengths - 1, key_positions, lengths
        )
        assert np.all(np.isneginf(logits[0, :, 3:]))
        assert np.all(probs[0, :, 3:] == 0.0)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)
