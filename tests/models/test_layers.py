"""Tests for Linear / LayerNorm / Embedding layers and the Module base class."""

import numpy as np
import pytest

from repro.models.layers import Embedding, LayerNorm, Linear, Module
from tests.conftest import finite_difference_gradient


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(2, 5, 4))
        out = layer(x)
        assert out.shape == (2, 5, 3)
        np.testing.assert_allclose(out, x @ layer.params["W"] + layer.params["b"], atol=1e-12)

    def test_backward_gradients_match_fd(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        upstream = rng.normal(size=(4, 2))

        def loss_wrt_w(w):
            return float(np.sum((x @ w + layer.params["b"]) * upstream))

        layer.zero_grad()
        layer(x)
        dx = layer.backward(upstream)
        np.testing.assert_allclose(
            layer.grads["W"],
            finite_difference_gradient(loss_wrt_w, layer.params["W"].copy()),
            atol=1e-6,
        )
        np.testing.assert_allclose(layer.grads["b"], upstream.sum(axis=0), atol=1e-12)
        np.testing.assert_allclose(dx, upstream @ layer.params["W"].T, atol=1e-12)

    def test_backward_before_forward_raises(self, rng):
        layer = Linear(2, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_gradients_accumulate(self, rng):
        layer = Linear(3, 3, rng)
        x = rng.normal(size=(2, 3))
        layer(x)
        layer.backward(np.ones((2, 3)))
        first = layer.grads["W"].copy()
        layer(x)
        layer.backward(np.ones((2, 3)))
        np.testing.assert_allclose(layer.grads["W"], 2 * first, atol=1e-12)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        ids = np.array([[1, 2], [3, 4]])
        out = emb(ids)
        np.testing.assert_allclose(out[0, 0], emb.params["weight"][1])

    def test_out_of_range_raises(self, rng):
        emb = Embedding(5, 2, rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_backward_scatter_adds(self, rng):
        emb = Embedding(6, 3, rng)
        ids = np.array([1, 1, 2])
        emb(ids)
        emb.backward(np.ones((3, 3)))
        np.testing.assert_allclose(emb.grads["weight"][1], 2.0)
        np.testing.assert_allclose(emb.grads["weight"][2], 1.0)
        np.testing.assert_allclose(emb.grads["weight"][0], 0.0)


class TestModuleTree:
    class _Composite(Module):
        def __init__(self, rng):
            super().__init__()
            self.linear = Linear(3, 3, rng)
            self.norm = LayerNorm(3)
            self.stack = [Linear(3, 2, rng), Linear(2, 3, rng)]

    def test_named_parameters_recurse(self, rng):
        module = self._Composite(rng)
        names = dict(module.named_parameters()).keys()
        assert "linear.W" in names and "norm.gamma" in names
        assert "stack.0.W" in names and "stack.1.b" in names

    def test_state_dict_round_trip(self, rng):
        module = self._Composite(rng)
        state = module.state_dict()
        other = self._Composite(np.random.default_rng(99))
        other.load_state_dict(state)
        for (name_a, a), (name_b, b) in zip(
            sorted(module.named_parameters()), sorted(other.named_parameters())
        ):
            assert name_a == name_b
            np.testing.assert_allclose(a, b)

    def test_load_state_dict_rejects_mismatch(self, rng):
        module = self._Composite(rng)
        state = module.state_dict()
        state.pop("linear.W")
        with pytest.raises(KeyError):
            module.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self, rng):
        module = self._Composite(rng)
        state = module.state_dict()
        state["linear.W"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            module.load_state_dict(state)

    def test_zero_grad(self, rng):
        module = self._Composite(rng)
        module.linear(np.ones((1, 3)))
        module.linear.backward(np.ones((1, 3)))
        assert np.abs(module.linear.grads["W"]).sum() > 0
        module.zero_grad()
        assert np.abs(module.linear.grads["W"]).sum() == 0

    def test_n_parameters(self, rng):
        module = self._Composite(rng)
        expected = (3 * 3 + 3) + (3 + 3) + (3 * 2 + 2) + (2 * 3 + 3)
        assert module.n_parameters() == expected
