"""Tests for RoPE and ALiBi positional encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.positional import (
    alibi_bias_matrix,
    alibi_bias_step,
    alibi_slopes,
    rope_rotate,
    rope_rotate_backward,
)


class TestRope:
    def test_position_zero_is_identity(self, rng):
        x = rng.normal(size=(2, 3, 8))
        np.testing.assert_allclose(rope_rotate(x, np.zeros((2, 3))), x, atol=1e-12)

    def test_norm_preserved(self, rng):
        x = rng.normal(size=(2, 4, 5, 16))
        rotated = rope_rotate(x, np.arange(5))
        np.testing.assert_allclose(
            np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-9
        )

    def test_inverse_rotation_round_trip(self, rng):
        x = rng.normal(size=(3, 7, 8))
        positions = np.arange(7)
        rotated = rope_rotate(x, positions)
        recovered = rope_rotate(rotated, positions, inverse=True)
        np.testing.assert_allclose(recovered, x, atol=1e-9)

    def test_backward_is_inverse(self, rng):
        x = rng.normal(size=(2, 5, 8))
        positions = np.arange(5)
        np.testing.assert_allclose(
            rope_rotate_backward(x, positions), rope_rotate(x, positions, inverse=True), atol=1e-12
        )

    def test_relative_position_property(self, rng):
        """q·k after RoPE depends only on the relative offset between positions."""
        d = 8
        q = rng.normal(size=d)
        k = rng.normal(size=d)
        dot_a = rope_rotate(q, np.array(7)) @ rope_rotate(k, np.array(3))
        dot_b = rope_rotate(q, np.array(14)) @ rope_rotate(k, np.array(10))
        np.testing.assert_allclose(dot_a, dot_b, atol=1e-9)

    def test_partial_rotation_leaves_tail_untouched(self, rng):
        x = rng.normal(size=(1, 4, 8))
        rotated = rope_rotate(x, np.arange(4), rope_dims=4)
        np.testing.assert_allclose(rotated[..., 4:], x[..., 4:], atol=1e-12)
        assert not np.allclose(rotated[..., :4][..., 1:], x[..., :4][..., 1:])

    def test_invalid_rope_dims(self, rng):
        x = rng.normal(size=(1, 2, 8))
        with pytest.raises(ValueError):
            rope_rotate(x, np.arange(2), rope_dims=16)
        with pytest.raises(ValueError):
            rope_rotate(x, np.arange(2), rope_dims=3)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_property_norm_preserved_any_position(self, position):
        rng = np.random.default_rng(position)
        x = rng.normal(size=(1, 1, 8))
        rotated = rope_rotate(x, np.array(position))
        np.testing.assert_allclose(
            np.linalg.norm(rotated), np.linalg.norm(x), atol=1e-9
        )


class TestAlibi:
    def test_slopes_power_of_two(self):
        slopes = alibi_slopes(8)
        assert slopes.shape == (8,)
        assert np.all(slopes > 0)
        assert np.all(np.diff(slopes) < 0)  # geometrically decreasing
        np.testing.assert_allclose(slopes[0], 2 ** (-8 / 8), atol=1e-12)

    def test_slopes_non_power_of_two(self):
        slopes = alibi_slopes(6)
        assert slopes.shape == (6,)
        assert np.all(slopes > 0)

    def test_slopes_invalid(self):
        with pytest.raises(ValueError):
            alibi_slopes(0)

    def test_bias_matrix_shape_and_sign(self):
        bias = alibi_bias_matrix(4, 6)
        assert bias.shape == (4, 6, 6)
        # Diagonal gets zero bias, lower triangle is non-positive.
        assert np.allclose(np.diagonal(bias, axis1=1, axis2=2), 0.0)
        assert np.all(bias <= 0)

    def test_bias_matrix_distance_scaling(self):
        bias = alibi_bias_matrix(2, 5)
        slopes = alibi_slopes(2)
        np.testing.assert_allclose(bias[0, 4, 0], -slopes[0] * 4, atol=1e-12)
        np.testing.assert_allclose(bias[1, 3, 1], -slopes[1] * 2, atol=1e-12)

    def test_bias_step_matches_matrix_row(self):
        n_heads, t = 4, 7
        matrix = alibi_bias_matrix(n_heads, t)
        key_positions = np.broadcast_to(np.arange(t), (1, n_heads, t))
        step = alibi_bias_step(n_heads, t - 1, key_positions)
        np.testing.assert_allclose(step[0], matrix[:, t - 1, :], atol=1e-12)

    def test_bias_step_recent_tokens_favored(self):
        key_positions = np.broadcast_to(np.arange(10), (1, 2, 10))
        bias = alibi_bias_step(2, 9, key_positions)
        # Bias increases (towards zero) with key position: recent keys preferred.
        assert np.all(np.diff(bias[0, 0]) > 0)
