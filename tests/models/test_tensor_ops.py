"""Unit and property tests for the tensor primitives and their gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.models import tensor_ops as ops
from tests.conftest import finite_difference_gradient

finite_floats = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(3, 7))
        probs = ops.softmax(x)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-12)

    def test_invariant_to_shift(self, rng):
        x = rng.normal(size=(4, 5))
        np.testing.assert_allclose(ops.softmax(x), ops.softmax(x + 100.0), atol=1e-12)

    def test_handles_masked_rows(self):
        x = np.array([[1.0, -np.inf, 2.0], [-np.inf, -np.inf, -np.inf]])
        probs = ops.softmax(x)
        assert probs[0, 1] == 0.0
        np.testing.assert_allclose(probs[0].sum(), 1.0)
        np.testing.assert_allclose(probs[1], 0.0)

    def test_matches_log_softmax(self, rng):
        x = rng.normal(size=(2, 9))
        np.testing.assert_allclose(np.exp(ops.log_softmax(x)), ops.softmax(x), atol=1e-12)

    @given(arrays(np.float64, (3, 6), elements=finite_floats))
    @settings(max_examples=25, deadline=None)
    def test_property_probabilities(self, x):
        probs = ops.softmax(x)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)

    def test_softmax_backward_matches_fd(self, rng):
        x = rng.normal(size=(2, 5))
        upstream = rng.normal(size=(2, 5))

        def scalar(inp):
            return float(np.sum(ops.softmax(inp) * upstream))

        probs = ops.softmax(x)
        analytic = ops.softmax_backward(upstream, probs)
        numeric = finite_difference_gradient(scalar, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestGelu:
    def test_zero_at_zero(self):
        assert ops.gelu(np.zeros(3)).tolist() == [0.0, 0.0, 0.0]

    def test_monotone_for_positive(self, rng):
        x = np.linspace(0.1, 5, 50)
        y = ops.gelu(x)
        assert np.all(np.diff(y) > 0)

    def test_backward_matches_fd(self, rng):
        x = rng.normal(size=(4, 3))
        upstream = rng.normal(size=(4, 3))

        def scalar(inp):
            return float(np.sum(ops.gelu(inp) * upstream))

        analytic = ops.gelu_backward(upstream, x)
        numeric = finite_difference_gradient(scalar, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestLayerNorm:
    def test_normalizes_mean_and_variance(self, rng):
        x = rng.normal(3.0, 2.0, size=(5, 16))
        out, _ = ops.layer_norm(x, np.ones(16), np.zeros(16))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self, rng):
        x = rng.normal(size=(2, 8))
        gamma = np.full(8, 2.0)
        beta = np.full(8, -1.0)
        out, _ = ops.layer_norm(x, gamma, beta)
        base, _ = ops.layer_norm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(out, 2.0 * base - 1.0, atol=1e-12)

    def test_backward_matches_fd(self, rng):
        x = rng.normal(size=(3, 6))
        gamma = rng.normal(size=6)
        beta = rng.normal(size=6)
        upstream = rng.normal(size=(3, 6))

        def scalar_x(inp):
            out, _ = ops.layer_norm(inp, gamma, beta)
            return float(np.sum(out * upstream))

        _, cache = ops.layer_norm(x, gamma, beta)
        dx, dgamma, dbeta = ops.layer_norm_backward(upstream, cache)
        np.testing.assert_allclose(dx, finite_difference_gradient(scalar_x, x.copy()), atol=1e-5)

        def scalar_gamma(g):
            out, _ = ops.layer_norm(x, g, beta)
            return float(np.sum(out * upstream))

        np.testing.assert_allclose(
            dgamma, finite_difference_gradient(scalar_gamma, gamma.copy()), atol=1e-5
        )
        np.testing.assert_allclose(dbeta, upstream.sum(axis=0), atol=1e-12)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 4), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss, _ = ops.cross_entropy(logits, np.array([1, 2]))
        assert loss < 1e-8

    def test_uniform_logits_loss_is_log_vocab(self):
        logits = np.zeros((3, 10))
        loss, _ = ops.cross_entropy(logits, np.array([0, 5, 9]))
        np.testing.assert_allclose(loss, np.log(10), atol=1e-9)

    def test_ignore_index_excluded(self, rng):
        logits = rng.normal(size=(4, 6))
        targets = np.array([1, -100, 3, -100])
        loss, grad = ops.cross_entropy(logits, targets)
        assert np.allclose(grad[1], 0.0) and np.allclose(grad[3], 0.0)
        loss_only, _ = ops.cross_entropy(logits[[0, 2]], targets[[0, 2]])
        np.testing.assert_allclose(loss, loss_only, atol=1e-12)

    def test_gradient_matches_fd(self, rng):
        logits = rng.normal(size=(3, 5))
        targets = np.array([0, 2, 4])

        def scalar(inp):
            loss, _ = ops.cross_entropy(inp, targets)
            return loss

        _, grad = ops.cross_entropy(logits, targets)
        numeric = finite_difference_gradient(scalar, logits.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ops.cross_entropy(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            ops.cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))


class TestOneHot:
    def test_round_trip(self, rng):
        idx = rng.integers(0, 7, size=(4, 5))
        onehot = ops.one_hot(idx, 7)
        assert onehot.shape == (4, 5, 7)
        np.testing.assert_array_equal(np.argmax(onehot, axis=-1), idx)
        np.testing.assert_allclose(onehot.sum(axis=-1), 1.0)
