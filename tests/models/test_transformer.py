"""Tests for decoder blocks, the full LM, configs and the model zoo registry."""

import numpy as np
import pytest

from repro.models.config import GenerationConfig, ModelConfig
from repro.models.model_zoo import MODEL_ZOO, build_model, get_model_config
from repro.models.transformer import DecoderLM
from repro.training.optimizer import Adam
from tests.conftest import tiny_config


class TestModelConfig:
    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=10, d_model=30, n_heads=4)

    def test_invalid_positional(self):
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=10, positional="sinusoidal")

    def test_invalid_vocab(self):
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=0)

    def test_round_trip_dict(self):
        config = tiny_config("alibi")
        restored = ModelConfig.from_dict(config.to_dict())
        assert restored == config

    def test_rope_dims_even(self):
        config = tiny_config("rope", rope_fraction=0.6)
        assert config.rope_dims % 2 == 0
        assert 0 < config.rope_dims <= config.d_head

    def test_n_parameters_matches_built_model(self):
        config = tiny_config("learned")
        model = DecoderLM(config)
        assert model.n_parameters() == config.n_parameters()

    def test_generation_config_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(max_new_tokens=0)
        with pytest.raises(ValueError):
            GenerationConfig(beam_size=0)
        with pytest.raises(ValueError):
            GenerationConfig(temperature=-0.1)
        # Temperature 0 is valid and means greedy decoding.
        assert GenerationConfig(temperature=0.0).temperature == 0.0


class TestForward:
    def test_logits_shape(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(2, 10))
        logits = tiny_model(ids)
        assert logits.shape == (2, 10, 64)

    def test_accepts_1d_input(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=12)
        assert tiny_model(ids).shape == (1, 12, 64)

    def test_learned_positions_length_guard(self, rng):
        model = DecoderLM(tiny_config("learned", max_seq_len=16))
        with pytest.raises(ValueError):
            model(rng.integers(0, 64, size=(1, 32)))

    def test_causality_of_full_model(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(1, 9))
        logits_a = tiny_model(ids).copy()
        ids_mod = ids.copy()
        ids_mod[0, -1] = (ids_mod[0, -1] + 1) % 64
        logits_b = tiny_model(ids_mod)
        np.testing.assert_allclose(logits_a[0, :-1], logits_b[0, :-1], atol=1e-9)

    def test_collect_attention_requires_flag(self, tiny_model, rng):
        tiny_model(rng.integers(0, 64, size=(1, 5)))
        with pytest.raises(RuntimeError):
            tiny_model.collect_attention()
        tiny_model(rng.integers(0, 64, size=(1, 5)), store_attention=True)
        maps = tiny_model.collect_attention()
        assert len(maps) == tiny_model.config.n_layers
        assert maps[0].shape == (1, 4, 5, 5)


class TestTrainingPath:
    def test_loss_decreases_with_adam(self, positional, rng):
        model = DecoderLM(tiny_config(positional), seed=1)
        optimizer = Adam(model, lr=3e-3)
        ids = rng.integers(3, 60, size=(4, 12))
        targets = np.roll(ids, -1, axis=1)
        first = None
        for _ in range(25):
            loss = model.train_step_gradients(ids, targets)
            optimizer.step()
            first = first if first is not None else loss
        assert loss < first * 0.9

    def test_loss_ignores_masked_targets(self, tiny_rope_model, rng):
        ids = rng.integers(0, 64, size=(2, 8))
        targets = np.full_like(ids, -100)
        targets[:, -1] = 3
        loss_masked, grad = tiny_rope_model.loss(ids, targets)
        assert np.isfinite(loss_masked)
        assert np.allclose(grad[:, :-1, :], 0.0)

    def test_gradients_flow_to_all_parameters(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(2, 10))
        targets = np.roll(ids, -1, axis=1)
        tiny_model.train_step_gradients(ids, targets)
        zero_grads = [
            name
            for name, grad in tiny_model.named_gradients()
            if np.allclose(grad, 0.0)
        ]
        # Two exceptions are mathematically expected: unused position-embedding
        # rows, and the key-projection bias (softmax is invariant to adding a
        # constant to every logit of a row, so its gradient is exactly zero).
        assert all(
            "position_embedding" in name or name.endswith("w_k.b") for name in zero_grads
        )

    def test_state_dict_round_trip_preserves_outputs(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(1, 7))
        expected = tiny_model(ids)
        clone = DecoderLM(tiny_model.config, seed=123)
        clone.load_state_dict(tiny_model.state_dict())
        np.testing.assert_allclose(clone(ids), expected, atol=1e-12)


class TestModelZoo:
    def test_zoo_covers_three_positional_families(self):
        families = {entry.positional for entry in MODEL_ZOO.values()}
        assert families == {"rope", "alibi", "learned"}

    def test_get_model_config(self):
        config = get_model_config("gptj_mini", vocab_size=100)
        assert config.positional == "rope"
        assert config.vocab_size == 100

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model_config("gpt5", vocab_size=10)

    def test_build_model(self):
        model = build_model("mpt_mini", vocab_size=80)
        assert isinstance(model, DecoderLM)
        assert model.config.positional == "alibi"
