"""The multi-token verify kernel is bit-identical to sequential decoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import FullAttentionPolicy
from repro.generation.generator import Generator
from repro.models.transformer import DecoderLM
from tests.conftest import tiny_config

PROMPT_LEN = 40
BLOCK = 5


def _prompt(model):
    return (
        np.random.default_rng(7)
        .integers(0, model.config.vocab_size, size=(1, PROMPT_LEN))
        .astype(np.int64)
    )


def _sequential_reference(model, prompt, n):
    """Feed the greedy chain one token at a time, recording each logits row."""
    generator = Generator(model, FullAttentionPolicy())
    logits, manager = generator._prompt_forward(prompt, PROMPT_LEN)
    views = manager.layer_views()
    tokens = [int(np.argmax(logits[:, -1, :]))]
    rows = []
    for _ in range(n):
        row = model.decode_step(np.asarray([tokens[-1]]), manager.current_position, views)
        manager.advance()
        rows.append(row[0].copy())
        tokens.append(int(np.argmax(row)))
    return tokens, rows


@pytest.mark.parametrize(
    "positional,overrides",
    [
        ("rope", {}),
        ("rope", {"rope_fraction": 0.5}),
        ("alibi", {}),
        ("learned", {}),
    ],
    ids=["rope", "rope_partial", "alibi", "learned"],
)
class TestVerifyStepBitExact:
    def test_verify_rows_equal_sequential_steps(self, positional, overrides):
        model = DecoderLM(tiny_config(positional, **overrides), seed=0)
        prompt = _prompt(model)
        tokens, rows = _sequential_reference(model, prompt, BLOCK)

        generator = Generator(model, FullAttentionPolicy())
        _, manager = generator._prompt_forward(prompt, PROMPT_LEN)
        views = manager.layer_views()
        positions = np.arange(manager.current_position, manager.current_position + BLOCK)
        verify_logits = model.verify_step(np.asarray(tokens[:BLOCK]), positions, views)
        for i in range(BLOCK):
            np.testing.assert_array_equal(verify_logits[i], rows[i])

    def test_rollback_then_decode_is_bit_exact(self, positional, overrides):
        """Truncating rejected tokens leaves the cache exactly at the accepted
        state: the next sequential step reproduces the reference bits."""
        model = DecoderLM(tiny_config(positional, **overrides), seed=0)
        prompt = _prompt(model)
        tokens, rows = _sequential_reference(model, prompt, BLOCK)

        generator = Generator(model, FullAttentionPolicy())
        _, manager = generator._prompt_forward(prompt, PROMPT_LEN)
        views = manager.layer_views()
        positions = np.arange(manager.current_position, manager.current_position + BLOCK)
        model.verify_step(np.asarray(tokens[:BLOCK]), positions, views)
        committed = 3
        manager.commit_verify(committed, BLOCK)
        assert manager.caches[0].length == PROMPT_LEN + committed
        row = model.decode_step(
            np.asarray([tokens[committed]]), manager.current_position, views
        )
        np.testing.assert_array_equal(row[0], rows[committed])

    def test_single_query_verify_equals_decode_step(self, positional, overrides):
        """The degenerate S=1 verify pass is exactly one decode step."""
        model = DecoderLM(tiny_config(positional, **overrides), seed=0)
        prompt = _prompt(model)
        tokens, rows = _sequential_reference(model, prompt, 1)

        generator = Generator(model, FullAttentionPolicy())
        _, manager = generator._prompt_forward(prompt, PROMPT_LEN)
        views = manager.layer_views()
        verify_logits = model.verify_step(
            np.asarray(tokens[:1]), np.asarray([manager.current_position]), views
        )
        np.testing.assert_array_equal(verify_logits[0], rows[0])
