"""Tests for the analytical A100 performance model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel.hardware import A100_40GB, A100_80GB, HardwareSpec
from repro.perfmodel.latency import AttentionPolicyOverhead, LatencyModel
from repro.perfmodel.memory import MPT_7B, GPT_J_6B, MemoryModel, PerfModelSpec
from repro.perfmodel.throughput import ThroughputModel


class TestHardwareSpec:
    def test_a100_constants(self):
        assert A100_80GB.hbm_capacity_gb == 80.0
        assert A100_80GB.effective_bandwidth_bytes < A100_80GB.hbm_bandwidth_gbps * 1e9

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareSpec("bad", hbm_bandwidth_gbps=0, peak_fp16_tflops=1, hbm_capacity_gb=1)
        with pytest.raises(ValueError):
            HardwareSpec("bad", 100, 100, 10, memory_efficiency=1.5)


class TestMemoryModel:
    def test_mpt_7b_model_size(self):
        memory = MemoryModel(MPT_7B)
        # ~6.7B parameters in fp16 ≈ 13 GB, matching Figure 1b.
        assert 12e9 < memory.model_bytes() < 15e9

    def test_kv_bytes_per_token(self):
        memory = MemoryModel(MPT_7B)
        # 2 (K and V) * 32 layers * 4096 dims * 2 bytes = 0.5 MiB per token.
        assert memory.kv_bytes_per_token() == 2 * 32 * 4096 * 2

    def test_kv_cache_scales_linearly(self):
        memory = MemoryModel(MPT_7B)
        assert memory.kv_cache_bytes(2000) == pytest.approx(2 * memory.kv_cache_bytes(1000))
        assert memory.kv_cache_bytes(1000, batch_size=2) == pytest.approx(
            2 * memory.kv_cache_bytes(1000)
        )

    def test_crossover_near_8k_with_beam_4(self):
        """Figure 1b: KV cache exceeds model size around 8k tokens (beam 4)."""
        crossover = MemoryModel(MPT_7B).crossover_seq_len(beam_size=4)
        assert 4000 < crossover < 10000

    def test_fits_and_max_batch(self):
        memory = MemoryModel(MPT_7B)
        assert memory.fits(A100_80GB.capacity_bytes, seq_len=2048, batch_size=1, beam_size=4)
        assert not memory.fits(A100_80GB.capacity_bytes, seq_len=8192, batch_size=8, beam_size=4)
        assert memory.max_batch_size(A100_80GB.capacity_bytes, 2048, beam_size=4) >= 1

    def test_paper_oom_configuration(self):
        """Table 1: 4096+4096 with batch 2, beam 4 and full cache does not fit."""
        memory = MemoryModel(MPT_7B)
        assert not memory.fits(A100_80GB.capacity_bytes, 8192, batch_size=2, beam_size=4)
        # With a 50% cache (2048 retained tokens) it fits again.
        assert memory.fits(A100_80GB.capacity_bytes, 2049, batch_size=2, beam_size=4)

    def test_paged_kv_rounds_to_whole_pages(self):
        memory = MemoryModel(MPT_7B)
        assert memory.kv_pages(1, 16) == 1
        assert memory.kv_pages(16, 16) == 1
        assert memory.kv_pages(17, 16) == 2
        # 17 cached tokens occupy two full pages — bounded fragmentation…
        assert memory.paged_kv_cache_bytes(17, page_size=16) == pytest.approx(
            memory.kv_cache_bytes(32)
        )
        # …never more than one page per sequence over the contiguous size.
        assert memory.paged_kv_cache_bytes(1000, page_size=16) < memory.kv_cache_bytes(
            1000
        ) + memory.kv_page_bytes(16)

    def test_paged_concurrency_beats_worst_case_reservation(self):
        """Memory-aware paged admission holds more 512-token-resident windows
        than reserving worst-case 4096-token slabs would."""
        memory = MemoryModel(MPT_7B)
        paged = memory.paged_max_concurrency(A100_80GB.capacity_bytes, seq_len=512)
        worst_case = memory.max_batch_size(A100_80GB.capacity_bytes, seq_len=4096)
        assert paged > worst_case

    def test_tier0_frames_matches_engine_conversion(self):
        memory = MemoryModel(MPT_7B)
        page_bytes = memory.kv_page_bytes(16)
        assert memory.tier0_frames(10 * page_bytes, page_size=16) == 10
        # Budget below two pages still funds the copy-on-write minimum.
        assert memory.tier0_frames(1, page_size=16) == 2
        with pytest.raises(ValueError):
            memory.tier0_frames(0)

    def test_tiered_capacity_ratio_amplifies_with_seq_len(self):
        memory = MemoryModel(MPT_7B)
        # One resident (append) page per 512-token sequence: 32 pages cached
        # per page pinned — the fixed tier-0 budget funds 32x the tokens.
        assert memory.tiered_capacity_ratio(512, page_size=16) == 32
        # A larger hot working set costs proportionally more residency.
        assert memory.tiered_capacity_ratio(
            512, page_size=16, resident_pages_per_seq=4
        ) == 8
        with pytest.raises(ValueError):
            memory.tiered_capacity_ratio(512, resident_pages_per_seq=0)

    def test_tiered_concurrency_is_seq_len_free(self):
        """With offload, the frame budget bounds rows — not resident length —
        so the same tier-0 bytes hold far more long sequences than paged
        admission without a spill tier."""
        memory = MemoryModel(MPT_7B)
        budget = 64 * memory.kv_page_bytes(16)
        tiered = memory.tiered_max_concurrency(budget, page_size=16)
        paged = int(budget // memory.paged_kv_cache_bytes(512, 1, 16))
        assert tiered > 2 * paged
        # int8 pages are cheaper, so the same bytes fund more frames.
        assert memory.tiered_max_concurrency(
            budget, page_size=16, kv_dtype="int8"
        ) > tiered

    def test_spill_transfer_seconds_prices_page_traffic(self):
        memory = MemoryModel(MPT_7B)
        bw = A100_80GB.effective_bandwidth_bytes
        one = memory.spill_transfer_seconds(1, bw, page_size=16)
        assert one == pytest.approx(memory.kv_page_bytes(16) / bw)
        # Symmetric and linear: restore + spill traffic just adds pages.
        assert memory.spill_transfer_seconds(7, bw, page_size=16) == pytest.approx(7 * one)
        assert memory.spill_transfer_seconds(0, bw) == 0.0
        with pytest.raises(ValueError):
            memory.spill_transfer_seconds(1, 0.0)
        with pytest.raises(ValueError):
            memory.spill_transfer_seconds(-1, bw)

    def test_measured_kv_bytes_uses_cache_nbytes(self):
        import numpy as np

        from repro.kvcache.cache import LayerKVCache

        caches = [
            LayerKVCache.from_prompt(
                np.zeros((1, 2, 10, 4)), np.zeros((1, 2, 10, 4))
            )
            for _ in range(3)
        ]
        # float64 storage: 2 tensors * 2 heads * 10 tokens * 4 dims * 8 bytes.
        assert MemoryModel.measured_kv_bytes(caches) == 3 * 2 * 2 * 10 * 4 * 8
        assert MemoryModel.measured_kv_bytes(caches, dtype_bytes=2) == 3 * 2 * 2 * 10 * 4 * 2

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PerfModelSpec("bad", 2, 100, 3, 100, 100)


class TestLatencyModel:
    def test_latency_grows_superlinearly_with_sequence(self):
        model = LatencyModel(MPT_7B)
        short = model.generation_latency(256, 256, 1, 4, 1.0)
        long = model.generation_latency(4096, 4096, 1, 4, 1.0)
        assert long > 16 * short  # more than linear in total tokens

    def test_kv_movement_fraction_grows_with_sequence(self):
        model = LatencyModel(MPT_7B)
        frac_short = model.generation_breakdown(256, 256, 1, 4, 1.0).kv_movement_fraction
        frac_long = model.generation_breakdown(4096, 4096, 1, 4, 1.0).kv_movement_fraction
        assert frac_long > frac_short
        assert 0.0 < frac_long < 1.0

    def test_reduced_cache_is_faster(self):
        model = LatencyModel(MPT_7B)
        full = model.generation_latency(2048, 2048, 1, 4, 1.0)
        reduced = model.generation_latency(2048, 2048, 1, 4, 0.5)
        assert reduced < full

    def test_speedup_in_paper_range(self):
        """~2x latency speedup at 50% cache for 4k sequences (Figure 9)."""
        model = LatencyModel(MPT_7B)
        speedup = model.speedup_vs_full(
            4096, 4096, 0.5, 1, 4, AttentionPolicyOverhead.keyformer()
        )
        assert 1.5 < speedup < 2.6

    def test_keyformer_speedup_exceeds_h2o_at_iso_accuracy(self):
        model = LatencyModel(MPT_7B)
        keyformer = model.speedup_vs_full(
            2048, 2048, 0.5, 1, 4, AttentionPolicyOverhead.keyformer()
        )
        h2o = model.speedup_vs_full(2048, 2048, 0.9, 1, 4, AttentionPolicyOverhead.h2o())
        assert keyformer > h2o > 1.0

    def test_score_overhead_increases_latency(self):
        model = LatencyModel(MPT_7B)
        without = model.generation_latency(1024, 1024, 1, 4, 0.5)
        with_overhead = model.generation_latency(
            1024, 1024, 1, 4, 0.5, AttentionPolicyOverhead.keyformer()
        )
        assert with_overhead > without
        # ... but the overhead must be small relative to the savings.
        full = model.generation_latency(1024, 1024, 1, 4, 1.0)
        assert with_overhead < full

    def test_invalid_kv_fraction(self):
        with pytest.raises(ValueError):
            LatencyModel(MPT_7B).generation_latency(100, 10, kv_fraction=0.0)

    def test_prompt_latency_compute_bound_scaling(self):
        model = LatencyModel(MPT_7B)
        assert model.prompt_latency(4096) > 2 * model.prompt_latency(1024)

    @given(st.integers(128, 4096), st.floats(0.1, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_property_latency_positive_and_monotone_in_fraction(self, prompt, fraction):
        model = LatencyModel(GPT_J_6B)
        reduced = model.generation_latency(prompt, 64, 1, 1, fraction)
        full = model.generation_latency(prompt, 64, 1, 1, 1.0)
        assert 0 < reduced <= full * 1.0001


class TestThroughputModel:
    def test_throughput_improves_with_cache_reduction(self):
        model = ThroughputModel(MPT_7B)
        full = model.evaluate(2048, 2048, 1, 4, 1.0)
        keyformer = model.evaluate(2048, 2048, 1, 4, 0.5, AttentionPolicyOverhead.keyformer())
        assert keyformer.tokens_per_second > full.tokens_per_second
        assert 1.3 < keyformer.tokens_per_second / full.tokens_per_second < 2.2

    def test_table1_oom_pattern(self):
        model = ThroughputModel(MPT_7B)
        full_bs2 = model.evaluate(4096, 4096, 2, 4, 1.0)
        keyformer_bs2 = model.evaluate(4096, 4096, 2, 4, 0.5, AttentionPolicyOverhead.keyformer())
        assert full_bs2.oom
        assert not keyformer_bs2.oom
        assert full_bs2.formatted() == "OOM"

    def test_bigger_batch_raises_throughput_when_it_fits(self):
        model = ThroughputModel(MPT_7B)
        bs1 = model.evaluate(4096, 4096, 1, 4, 0.5, AttentionPolicyOverhead.keyformer())
        bs2 = model.evaluate(4096, 4096, 2, 4, 0.5, AttentionPolicyOverhead.keyformer())
        assert bs2.tokens_per_second > bs1.tokens_per_second

    def test_max_feasible_batch_larger_with_reduction(self):
        model = ThroughputModel(MPT_7B)
        assert model.max_feasible_batch(4096, 4096, 0.5) > model.max_feasible_batch(4096, 4096, 1.0)

    def test_smaller_gpu_ooms_earlier(self):
        big = ThroughputModel(MPT_7B, A100_80GB)
        small = ThroughputModel(MPT_7B, A100_40GB)
        assert big.max_feasible_batch(4096, 4096, 1.0, beam_size=4) >= small.max_feasible_batch(
            4096, 4096, 1.0, beam_size=4
        )
