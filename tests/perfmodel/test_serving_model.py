"""Step-cost and expected-TTFT model: math, validation, engine consistency.

The analytical model's chunk-count arithmetic must agree with what the
engine actually does (including the 1-token-remainder absorption), and its
qualitative predictions — chunking raises the long prompt's own TTFT while
shrinking the per-step stall bound its neighbours see — are what the gated
benchmark measures empirically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.perfmodel.serving import StepCostModel, TTFTModel


def test_step_cost_affine():
    cost = StepCostModel(fixed=0.5, per_prefill_token=0.1, per_decode_row=1.0)
    assert cost.step_cost(0, 0) == 0.5
    assert cost.step_cost(10, 0) == pytest.approx(1.5)
    assert cost.step_cost(0, 3) == pytest.approx(3.5)
    assert cost.step_cost(10, 3) == pytest.approx(4.5)


def test_step_cost_validation():
    with pytest.raises(ValueError):
        StepCostModel(fixed=-1.0)
    with pytest.raises(ValueError):
        StepCostModel(fixed=0.0, per_prefill_token=0.0, per_decode_row=0.0)


def test_unchunked_ttft_is_one_step():
    cost = StepCostModel()
    model = TTFTModel(cost)
    assert model.unchunked_ttft(128, decode_rows=3) == cost.step_cost(128, 3)


def test_chunked_ttft_exceeds_unchunked_for_the_long_prompt():
    """Chunking trades the long prompt's own TTFT for its neighbours'."""
    model = TTFTModel(StepCostModel())
    for prompt_len in (64, 129, 300):
        assert model.chunked_ttft(prompt_len, 32) >= model.unchunked_ttft(prompt_len)


def test_chunked_ttft_short_prompt_unchanged():
    """Prompts at or below budget+1 run in one step either way."""
    model = TTFTModel(StepCostModel())
    assert model.chunked_ttft(33, 32) == model.unchunked_ttft(33)


def test_stall_bound_shrinks_with_chunking():
    model = TTFTModel(StepCostModel())
    unbounded = model.decode_stall_bound(None, 512)
    bounded = model.decode_stall_bound(32, 512)
    assert bounded < unbounded
    assert bounded == pytest.approx(0.1 * 33)  # budget + absorbed remainder
    # A short prompt never stalls more than its own length.
    assert model.decode_stall_bound(32, 16) == pytest.approx(0.1 * 16)


def test_chunk_count_validation():
    model = TTFTModel(StepCostModel())
    with pytest.raises(ValueError):
        model.chunked_ttft(64, 1)


@pytest.mark.parametrize("prompt_len", [33, 34, 48, 49, 97])
def test_chunk_count_matches_engine(prompt_len):
    """The model's implied chunk count equals the engine's actual steps."""
    from repro.serving.engine import ContinuousBatchingEngine
    from repro.serving.scheduler import PagedScheduler

    chunk = 16
    cost = StepCostModel()
    model = TTFTModel(cost)
    # Back out the model's chunk count from the closed form.
    per_chunk = cost.step_cost(0, 0)
    n_chunks = round(
        (model.chunked_ttft(prompt_len, chunk) - cost.per_prefill_token * prompt_len)
        / per_chunk
    )

    lm = DecoderLM(
        ModelConfig(
            vocab_size=64,
            d_model=32,
            n_layers=2,
            n_heads=4,
            d_ff=64,
            max_seq_len=256,
            positional="rope",
        ),
        seed=0,
    )
    engine = ContinuousBatchingEngine(
        lm, scheduler=PagedScheduler(max_batch_size=1, prefill_chunk_tokens=chunk)
    )
    prompt = np.random.default_rng(prompt_len).integers(0, 64, size=prompt_len)
    engine.submit(prompt, GenerationConfig(max_new_tokens=2))
    engine.run()
    expected = engine.n_prefill_chunks if engine.n_prefill_chunks else 1
    assert n_chunks == expected


# ----------------------------------------------------------------------
# replica scaling model
# ----------------------------------------------------------------------
def test_replica_scaling_math():
    from repro.perfmodel.serving import ReplicaScalingModel

    cost = StepCostModel(fixed=0.5, per_prefill_token=0.1, per_decode_row=1.0)
    model = ReplicaScalingModel(cost)
    assert model.speedup(1, rows_per_replica=4) == pytest.approx(1.0)
    # Zero router overhead: N balanced replicas are exactly N times one.
    assert model.speedup(4, rows_per_replica=4) == pytest.approx(4.0)
    assert model.aggregate_throughput(2, 4) == pytest.approx(
        2 * model.aggregate_throughput(1, 4)
    )
    # Router overhead makes scaling sub-linear, monotonically in overhead.
    taxed = ReplicaScalingModel(cost, router_overhead=1.0)
    assert taxed.speedup(4, 4) < 4.0
    assert taxed.aggregate_throughput(4, 4) < model.aggregate_throughput(4, 4)
    # Dilution: min(N, reuses) cold prefills without affinity routing.
    assert ReplicaScalingModel.prefill_dilution(4, 12.0) == 4.0
    assert ReplicaScalingModel.prefill_dilution(8, 3.0) == 3.0
    with pytest.raises(ValueError):
        ReplicaScalingModel(cost, router_overhead=-0.1)
    with pytest.raises(ValueError):
        model.aggregate_throughput(0, 4)
    with pytest.raises(ValueError):
        ReplicaScalingModel.prefill_dilution(0, 4)


def test_replica_scaling_model_pins_measured_harness_runs():
    """The model's speedup prediction tracks measured 1/2/4-replica replays.

    The same pinned shared-prefix trace replays through the sharded
    front-end at N = 1, 2, 4 (inline backend, spill-balanced router) in
    virtual step-time.  Outputs are bit-identical across N, so measured
    speedup is purely the makespan ratio; the model predicts it from the
    measured per-replica step shape (average decode rows and prefill
    tokens per replica-step).  The tolerance is loose — the model assumes
    perfectly balanced, always-saturated replicas — but pins the shape:
    monotone scaling, ≥2x at N=4, prediction within 35%.
    """
    from repro.perfmodel.serving import ReplicaScalingModel
    from repro.serving.sharded import (
        PrefixAffinityRouter,
        ReplicaSpec,
        ShardedEngine,
    )
    from repro.serving.workload import WorkloadConfig, generate_trace, replay_trace

    cost = StepCostModel()
    trace = generate_trace(
        WorkloadConfig(
            n_requests=32,
            vocab_size=64,
            mean_interarrival=0.3,
            n_prefixes=4,
            prefix_share_prob=0.8,
            prefix_len_pages=2,
            suffix_len_range=(4, 12),
            prompt_len_range=(8, 40),
            output_len_choices=(12,),
            output_len_weights=(1.0,),
        ),
        seed=5,
    )
    spec = ReplicaSpec(
        model_config=ModelConfig(
            vocab_size=64,
            d_model=32,
            n_layers=2,
            n_heads=4,
            d_ff=64,
            max_seq_len=256,
            positional="rope",
        ),
        max_batch_size=4,
    )

    measured = {}
    shape = {}
    for n in (1, 2, 4):
        router = PrefixAffinityRouter(n, spill_load=4)
        with ShardedEngine(spec, n, router=router, backend="inline") as eng:
            result = replay_trace(eng, trace, cost)
            measured[n] = result.makespan
            shape[n] = (
                eng.decode_rows_total / (eng.step_count * n),
                eng.prefill_computed_tokens / (eng.step_count * n),
            )

    # Monotone scaling, and the headline ≥2x at four replicas.
    assert measured[1] > measured[2] > measured[4]
    assert measured[1] / measured[4] >= 2.0

    model = ReplicaScalingModel(cost)
    for n in (2, 4):
        rows, prefill = shape[n]
        predicted = model.speedup(n, rows, prefill)
        observed = measured[1] / measured[n]
        assert predicted == pytest.approx(observed, rel=0.35)
