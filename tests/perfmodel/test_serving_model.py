"""Step-cost and expected-TTFT model: math, validation, engine consistency.

The analytical model's chunk-count arithmetic must agree with what the
engine actually does (including the 1-token-remainder absorption), and its
qualitative predictions — chunking raises the long prompt's own TTFT while
shrinking the per-step stall bound its neighbours see — are what the gated
benchmark measures empirically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.perfmodel.serving import StepCostModel, TTFTModel


def test_step_cost_affine():
    cost = StepCostModel(fixed=0.5, per_prefill_token=0.1, per_decode_row=1.0)
    assert cost.step_cost(0, 0) == 0.5
    assert cost.step_cost(10, 0) == pytest.approx(1.5)
    assert cost.step_cost(0, 3) == pytest.approx(3.5)
    assert cost.step_cost(10, 3) == pytest.approx(4.5)


def test_step_cost_validation():
    with pytest.raises(ValueError):
        StepCostModel(fixed=-1.0)
    with pytest.raises(ValueError):
        StepCostModel(fixed=0.0, per_prefill_token=0.0, per_decode_row=0.0)


def test_unchunked_ttft_is_one_step():
    cost = StepCostModel()
    model = TTFTModel(cost)
    assert model.unchunked_ttft(128, decode_rows=3) == cost.step_cost(128, 3)


def test_chunked_ttft_exceeds_unchunked_for_the_long_prompt():
    """Chunking trades the long prompt's own TTFT for its neighbours'."""
    model = TTFTModel(StepCostModel())
    for prompt_len in (64, 129, 300):
        assert model.chunked_ttft(prompt_len, 32) >= model.unchunked_ttft(prompt_len)


def test_chunked_ttft_short_prompt_unchanged():
    """Prompts at or below budget+1 run in one step either way."""
    model = TTFTModel(StepCostModel())
    assert model.chunked_ttft(33, 32) == model.unchunked_ttft(33)


def test_stall_bound_shrinks_with_chunking():
    model = TTFTModel(StepCostModel())
    unbounded = model.decode_stall_bound(None, 512)
    bounded = model.decode_stall_bound(32, 512)
    assert bounded < unbounded
    assert bounded == pytest.approx(0.1 * 33)  # budget + absorbed remainder
    # A short prompt never stalls more than its own length.
    assert model.decode_stall_bound(32, 16) == pytest.approx(0.1 * 16)


def test_chunk_count_validation():
    model = TTFTModel(StepCostModel())
    with pytest.raises(ValueError):
        model.chunked_ttft(64, 1)


@pytest.mark.parametrize("prompt_len", [33, 34, 48, 49, 97])
def test_chunk_count_matches_engine(prompt_len):
    """The model's implied chunk count equals the engine's actual steps."""
    from repro.serving.engine import ContinuousBatchingEngine
    from repro.serving.scheduler import PagedScheduler

    chunk = 16
    cost = StepCostModel()
    model = TTFTModel(cost)
    # Back out the model's chunk count from the closed form.
    per_chunk = cost.step_cost(0, 0)
    n_chunks = round(
        (model.chunked_ttft(prompt_len, chunk) - cost.per_prefill_token * prompt_len)
        / per_chunk
    )

    lm = DecoderLM(
        ModelConfig(
            vocab_size=64,
            d_model=32,
            n_layers=2,
            n_heads=4,
            d_ff=64,
            max_seq_len=256,
            positional="rope",
        ),
        seed=0,
    )
    engine = ContinuousBatchingEngine(
        lm, scheduler=PagedScheduler(max_batch_size=1, prefill_chunk_tokens=chunk)
    )
    prompt = np.random.default_rng(prompt_len).integers(0, 64, size=prompt_len)
    engine.submit(prompt, GenerationConfig(max_new_tokens=2))
    engine.run()
    expected = engine.n_prefill_chunks if engine.n_prefill_chunks else 1
    assert n_chunks == expected
