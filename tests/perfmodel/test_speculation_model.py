"""Tests for the analytical speculative-decoding speedup model."""

from __future__ import annotations

import pytest

from repro.perfmodel.speculation import SpeculationModel, expected_tokens_per_round


class TestExpectedTokens:
    def test_zero_acceptance_commits_one(self):
        assert expected_tokens_per_round(0.0, 8) == 1.0

    def test_perfect_acceptance_commits_k_plus_one(self):
        assert expected_tokens_per_round(1.0, 8) == 9.0

    def test_geometric_formula(self):
        # alpha=0.5, k=2: 1 + 0.5 + 0.25 = 1.75
        assert expected_tokens_per_round(0.5, 2) == pytest.approx(1.75)

    def test_monotone_in_alpha_and_k(self):
        values = [expected_tokens_per_round(a / 10, 4) for a in range(11)]
        assert values == sorted(values)
        values = [expected_tokens_per_round(0.8, k) for k in range(0, 8)]
        assert values == sorted(values)

    def test_clamps_alpha(self):
        assert expected_tokens_per_round(1.5, 4) == 5.0
        assert expected_tokens_per_round(-0.2, 4) == 1.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            expected_tokens_per_round(0.5, -1)


class TestSpeculationModel:
    def test_free_drafter_with_perfect_acceptance_speeds_up(self):
        model = SpeculationModel.ngram()
        assert model.speedup(1.0, 8) > 1.5

    def test_expensive_drafter_cannot_win(self):
        # Drafter as costly as the target (the dispatch-bound self-draft
        # regime): even perfect acceptance loses to vanilla decode.
        model = SpeculationModel(draft_cost=1.0, verify_base=0.4, verify_per_token=0.6)
        assert model.speedup(1.0, 4) < 1.0
        assert model.breakeven_alpha(4) == 1.0

    def test_breakeven_is_monotone_boundary(self):
        model = SpeculationModel.ngram()
        alpha = model.breakeven_alpha(4)
        assert model.speedup(alpha, 4) >= 1.0
        if alpha > 0:
            assert model.speedup(alpha - 0.05, 4) < model.speedup(alpha, 4)

    def test_optimal_k_grows_with_acceptance(self):
        model = SpeculationModel.ngram()
        assert model.optimal_k(0.99, max_k=16) >= model.optimal_k(0.5, max_k=16)

    def test_self_draft_cost_scales_with_budget(self):
        cheap = SpeculationModel.self_draft(budget=64, context=1024)
        costly = SpeculationModel.self_draft(budget=1024, context=1024)
        assert cheap.draft_cost < costly.draft_cost
        assert costly.draft_cost == pytest.approx(1.0)

    def test_self_draft_validates_geometry(self):
        with pytest.raises(ValueError):
            SpeculationModel.self_draft(budget=0, context=1024)
