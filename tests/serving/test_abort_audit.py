"""Abort/cancel audit: every request state, no leaks, no stale telemetry.

``engine.abort()`` must work identically well on queued, running and
already-finished requests — across vanilla, int8 and speculative modes —
leaving the paged store clean and every counter consistent.  This file also
pins two scheduler/telemetry bugs found by the audit:

* **FCFS priority inversion** — ``FCFSScheduler.requeue`` used to
  ``appendleft``, so a young request requeued after a failed prefill could
  overtake an older preemption victim requeued in the same step.  The queue
  is now kept sorted by (monotonic) ``request_id``.
* **Speculation-stats double count** — the lone-request n-gram fallback
  released its drafter through ``_release_spec``, merging the live stats
  into the discarded aggregate *and* keeping the same object live, so every
  pre-fallback round was counted twice at retirement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CachePolicyConfig
from repro.core.policies import WindowAttentionPolicy
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.request import FinishReason, Request, RequestState, RequestStatus
from repro.serving.scheduler import FCFSScheduler
from repro.speculative.config import SpeculationConfig
from repro.speculative.drafter import NgramDrafter

VOCAB = 96
MAX_NEW = 8


def make_model() -> DecoderLM:
    return DecoderLM(
        ModelConfig(
            vocab_size=VOCAB,
            d_model=32,
            n_layers=2,
            n_heads=4,
            d_ff=64,
            max_seq_len=512,
            positional="rope",
        ),
        seed=0,
    )


def prompts(n, seed=0, length=24):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=length).astype(np.int64) for _ in range(n)]


def assert_store_clean(engine):
    assert engine.check_invariants() == []
    if engine._manager is None:
        return
    engine._manager.registry.clear()
    for pool in engine._manager.store.pools:
        assert int((pool.refcounts != 0).sum()) == 0
        assert pool.free_pages == pool.n_pages


ENGINE_MODES = {
    "vanilla": {},
    "int8": {"kv_dtype": "int8", "enable_prefix_sharing": False},
    "spec": {"speculation": SpeculationConfig(k=3, drafter="window")},
}


@pytest.mark.parametrize("mode", sorted(ENGINE_MODES))
class TestAbortAcrossStates:
    def _engine(self, mode):
        return ContinuousBatchingEngine(make_model(), max_batch_size=2, **ENGINE_MODES[mode])

    def test_abort_queued_request(self, mode):
        engine = self._engine(mode)
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        p1, p2, p3 = prompts(3)
        running = engine.submit(p1, config)
        engine.step()
        queued = engine.submit(p2, config)
        waiting = engine.submit(p3, config)
        # max_batch_size=2 admits p2; abort the still-queued p3 first.
        assert engine.abort(waiting.request_id)
        assert waiting.status is RequestStatus.FINISHED
        assert waiting.finish_reason is FinishReason.ABORTED
        assert waiting.tokens == [] and waiting.pending_token is None
        assert waiting.cache_stats is not None
        engine.run()
        assert running.finish_reason is FinishReason.LENGTH
        assert queued.finish_reason is FinishReason.LENGTH
        assert_store_clean(engine)

    def test_abort_running_request_frees_pages(self, mode):
        engine = self._engine(mode)
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        p1, p2 = prompts(2, seed=1)
        first = engine.submit(p1, config)
        second = engine.submit(p2, config)
        engine.step()
        assert engine.n_running == 2
        assert engine.abort(first.request_id)
        assert first.finish_reason is FinishReason.ABORTED
        assert engine.n_running == 1
        assert engine.check_invariants() == []  # freed pages, clean refcounts
        if mode == "spec":
            assert first.request_id not in engine._spec
        engine.run()
        assert second.finish_reason is FinishReason.LENGTH
        assert_store_clean(engine)

    def test_abort_finished_or_unknown_returns_false(self, mode):
        engine = self._engine(mode)
        state = engine.submit(prompts(1, seed=2)[0], GenerationConfig(max_new_tokens=4))
        engine.run()
        assert state.finished
        assert not engine.abort(state.request_id)
        assert not engine.abort(987654)
        # Double-abort must not corrupt the finished list or telemetry.
        assert len(engine._finished) == 1
        assert_store_clean(engine)

    def test_abort_running_keeps_survivor_bit_exact(self, mode):
        config = GenerationConfig(max_new_tokens=16)
        p1, p2 = prompts(2, seed=3)
        reference = self._engine(mode)
        ref_state = reference.submit(p2, config)
        reference.run()

        engine = self._engine(mode)
        victim = engine.submit(p1, config)
        survivor = engine.submit(p2, config)
        engine.step()
        assert engine.abort(victim.request_id)
        engine.run()
        assert survivor.tokens == ref_state.tokens
        assert survivor.result().log_probs == ref_state.result().log_probs
        assert_store_clean(engine)


class TestSchedulerOrderingFixes:
    def _state(self, request_id):
        return RequestState(
            request=Request(request_id=request_id, prompt_ids=np.zeros((1, 4), np.int64)),
            sampler=GreedySampler(),
            policy=WindowAttentionPolicy(CachePolicyConfig(kv_budget=8)),
        )

    def test_requeue_preserves_arrival_order(self):
        """An old preemption victim and a young failed admission requeued in
        the same step must come back out oldest-first (the inversion bug)."""
        scheduler = FCFSScheduler(max_batch_size=4)
        old, young = self._state(3), self._state(7)
        waiting = self._state(5)
        scheduler.submit(waiting)
        # Young (failed prefill) happens to requeue before old (victim).
        scheduler.requeue(young)
        scheduler.requeue(old)
        assert [s.request_id for s in scheduler.pending] == [3, 5, 7]

    def test_requeue_many_keeps_order(self):
        scheduler = FCFSScheduler(max_batch_size=4)
        scheduler.requeue_many([self._state(9), self._state(2), self._state(6)])
        assert [s.request_id for s in scheduler.pending] == [2, 6, 9]

    def test_retry_backoff_blocks_head_of_line(self):
        scheduler = FCFSScheduler(max_batch_size=4)
        head, behind = self._state(1), self._state(2)
        head.retry_at = 10
        scheduler.requeue(head)
        scheduler.submit(behind)
        # Inside the backoff window nothing is admitted (head-of-line rule).
        assert scheduler.admit(0, 0, now_step=5) == []
        assert scheduler.admit(0, 0, now_step=10) == [head, behind]

    def test_cancel_returns_state_and_removes(self):
        scheduler = FCFSScheduler(max_batch_size=4)
        state = self._state(4)
        scheduler.submit(state)
        assert scheduler.cancel(4) is state
        assert scheduler.cancel(4) is None
        assert len(scheduler) == 0


class TestSpeculationStatsAccounting:
    def test_ngram_fallback_does_not_double_count(self, monkeypatch):
        """Force the lone-request drafter fallback (a synthetic mid-round
        ``PoolExhausted``), then check the aggregate equals the per-request
        summary exactly — the double-count bug made every pre-fallback round
        count twice at retirement."""
        import repro.serving.engine as engine_mod
        from repro.kvcache.paged import PoolExhausted

        model = make_model()
        config = GenerationConfig(max_new_tokens=16)
        prompt = prompts(1, seed=4, length=32)[0]
        engine = ContinuousBatchingEngine(
            model,
            max_batch_size=1,
            speculation=SpeculationConfig(k=3, drafter="window"),
        )
        real_run_round = engine_mod.run_round
        calls = {"n": 0}

        def flaky_run_round(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise PoolExhausted("synthetic mid-round exhaustion")
            return real_run_round(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "run_round", flaky_run_round)
        state = engine.submit(prompt, config)
        fell_back = False
        while engine.has_work:
            engine.step()
            spec = engine._spec.get(state.request_id)
            if spec is not None and isinstance(spec[0], NgramDrafter):
                fell_back = True
        assert fell_back  # the drafter swap must actually have happened
        assert state.finish_reason is FinishReason.LENGTH
        # No preemptions happened (lone request), so the aggregate must
        # equal this request's own summary.
        total = engine.speculation_stats
        assert engine.n_preemptions == 0
        assert total.rounds == state.speculation["rounds"]
        assert total.committed == state.speculation["committed"]
        assert_store_clean(engine)

    def test_aborted_spec_request_counts_work_once(self):
        model = make_model()
        engine = ContinuousBatchingEngine(
            model,
            max_batch_size=2,
            speculation=SpeculationConfig(k=3, drafter="ngram"),
        )
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        p1, p2 = prompts(2, seed=5)
        victim = engine.submit(p1, config)
        keeper = engine.submit(p2, config)
        engine.step()
        rounds_before = engine.speculation_stats.rounds
        assert engine.abort(victim.request_id)
        # The aborted request's rounds moved to the discarded aggregate, once.
        assert engine.speculation_stats.rounds == rounds_before
        engine.run()
        assert keeper.finish_reason is FinishReason.LENGTH
        assert victim.request_id not in engine._spec
        assert_store_clean(engine)
