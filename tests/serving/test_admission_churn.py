"""Regression test: W-TinyLFU keeps the hot shared prefix through scan bursts.

A deterministic churn trace — a 128-token shared system prompt served
repeatedly, interleaved with bursts of unique one-shot prompts at a pool
budget too small to hold both — is exactly the workload LRU leaf-first
reclaim loses: every burst's fresh chunks out-recency the hot chain, so the
prefix everyone shares is evicted and re-prefilled each round.  W-TinyLFU's
sketch sees the hot chunks' frequency and rejects the one-shot window
candidates at reclaim time instead.

Asserted via registry hit/savings counters at equal pool budget: the hot
prefix must still be fully matchable under ``"wtinylfu"`` after the final
burst, evicted under ``"lru"``, and W-TinyLFU must retain at least 1.5x the
saved prefill tokens (the gated ``prefix_admission_retention`` benchmark
pins the same trace at its measured ratio).
"""

from __future__ import annotations

import numpy as np

from repro.generation.sampler import GreedySampler
from repro.kvcache.paged import chunk_digest
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine

VOCAB = 96
HOT_LEN = 130  # 8 full 16-token pages + the 2-token recompute tail
SCAN_LEN = 32
SCANS_PER_BURST = 10
BURSTS = 4
POOL_TOKENS = 256  # 16 pages/layer: hot chain pins 8, bursts must reclaim

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)
_CONFIG = GenerationConfig(max_new_tokens=4)


def _resident_prefix_tokens(registry, tokens):
    """Side-effect-free probe: resident chained-prefix length of ``tokens``.

    Unlike :meth:`PrefixRegistry.match` this touches no recency clocks and
    no admission segments, so probing between requests cannot perturb the
    trace under either policy.
    """
    ps = registry.page_size
    parent = None
    covered = 0
    while covered + ps <= len(tokens):
        key = chunk_digest(tokens[covered : covered + ps], parent)
        if key not in registry._chunks:
            break
        parent = key
        covered += ps
    return covered


def _run_churn(admission_policy):
    """Serve the deterministic churn trace.

    Returns ``(engine, hot_prompt, residency)`` where ``residency`` lists
    the hot chain's resident prefix length probed right after each scan
    burst, *before* the burst-closing hot request re-prefills anything.
    """
    rng = np.random.default_rng(7)
    hot = rng.integers(0, VOCAB, size=HOT_LEN).astype(np.int64)
    scans = iter(
        rng.integers(0, VOCAB, size=SCAN_LEN).astype(np.int64)
        for _ in range(SCANS_PER_BURST * BURSTS)
    )
    engine = ContinuousBatchingEngine(
        _MODEL,
        max_batch_size=2,
        max_pool_tokens=POOL_TOKENS,
        admission_policy=admission_policy,
    )

    def serve(prompt):
        engine.submit(prompt, _CONFIG, sampler=GreedySampler())
        engine.run()

    serve(hot)
    serve(hot)  # second pass promotes the hot chunks into protected
    residency = []
    for _ in range(BURSTS):
        for _ in range(SCANS_PER_BURST):
            serve(next(scans))
        residency.append(_resident_prefix_tokens(engine._manager.registry, hot))
        serve(hot)
        engine.check_invariants(strict=True)
    return engine, hot, residency


def test_wtinylfu_retains_hot_prefix_lru_evicts_it():
    lru_engine, hot, lru_residency = _run_churn("lru")
    wt_engine, _, wt_residency = _run_churn("wtinylfu")
    lru_registry = lru_engine._manager.registry
    wt_registry = wt_engine._manager.registry

    # After every scan burst the hot chain is still fully resident under
    # W-TinyLFU — the burst-closing hot request is a pure 128-token hit…
    assert wt_residency == [128] * BURSTS
    # …while LRU sacrificed it to the burst's one-shot chunks every round.
    assert all(resident < 128 for resident in lru_residency)

    # Savings counters at equal pool budget: every post-warmup hot request is
    # a full 128-token hit under W-TinyLFU, a re-prefill under LRU.
    assert wt_registry.n_hit_tokens >= int(1.5 * lru_registry.n_hit_tokens)
    assert wt_engine.prefill_savings > lru_engine.prefill_savings

    # The decision counters tell the same story: every reclaim under
    # W-TinyLFU rejected a one-shot window candidate — the protected hot
    # chain was never sacrificed.
    telemetry = wt_registry.telemetry()
    assert telemetry["policy"] == "wtinylfu"
    assert telemetry["rejected"] > 0
    assert telemetry["evicted_protected"] == 0
    assert lru_registry.telemetry()["policy"] == "lru"
    assert "rejected" not in lru_registry.telemetry()


def test_churn_outputs_identical_across_policies():
    """Retention differs; the served bits must not (bit-exactness contract)."""
    rng = np.random.default_rng(7)
    hot = rng.integers(0, VOCAB, size=HOT_LEN).astype(np.int64)
    outputs = {}
    for policy in ("lru", "wtinylfu"):
        engine = ContinuousBatchingEngine(
            _MODEL,
            max_batch_size=2,
            max_pool_tokens=POOL_TOKENS,
            admission_policy=policy,
        )
        states = []
        for _ in range(3):
            states.append(engine.submit(hot, _CONFIG, sampler=GreedySampler()))
            engine.run()
        outputs[policy] = [(s.tokens, s.result().log_probs) for s in states]
    assert outputs["lru"] == outputs["wtinylfu"]
