"""Property test: the admission-policy knob never changes served outputs.

W-TinyLFU admission only re-ranks which registered prefix chunk is
sacrificed under pool pressure — chunk reuse and reclaim change *where*
prompt pages come from, never the bits computed from them.  Hypothesis
drives random request subsets, submission orders, engine widths and small
fixed pools (tight enough to force registry reclaim) across
``admission_policy`` × ``kv_dtype`` combinations, stepping the engine
manually so the full pool audit runs after **every** step (hence after
every reclaim): outputs must stay bit-identical to dedicated solo runs, the
strict invariant check must stay clean throughout, and at drain time every
used page must be a registry pin — zero leaked pages.

The fp64 prompt set includes a deliberate shared 32-token prefix so the
registry serves real cross-request hits; the int8 set keeps prompts
disjoint because shared-prefix prefill under int8 reads dequantized pages —
the one documented tolerance-level path (see
``tests/serving/test_quant_equivalence.py``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.kvcache.admission import ADMISSION_POLICIES
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine

VOCAB = 96
MAX_NEW_TOKENS = 8
PROMPT_LENGTHS = (41, 18, 29, 37)

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)

_RNG = np.random.default_rng(31)
#: fp64 prompts share a 32-token prefix (two full pages) between the first
#: and last request; int8 prompts stay disjoint (see module docstring).
_PROMPTS = {
    None: [_RNG.integers(0, VOCAB, size=n).astype(np.int64) for n in PROMPT_LENGTHS],
    "int8": [
        _RNG.integers(0, VOCAB, size=n).astype(np.int64) for n in PROMPT_LENGTHS
    ],
}
_PROMPTS[None][3] = np.concatenate([_PROMPTS[None][0][:32], _PROMPTS[None][3][32:]])
_CONFIG = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)

#: Dedicated single-request reference outputs, computed once per kv dtype.
_EXPECTED = {
    dtype: [
        Generator(_MODEL, kv_dtype=dtype).generate(p, _CONFIG, sampler=GreedySampler())
        for p in prompts
    ]
    for dtype, prompts in _PROMPTS.items()
}


@pytest.mark.parametrize("kv_dtype", [None, "int8"])
@pytest.mark.parametrize("admission_policy", ADMISSION_POLICIES)
@settings(max_examples=6, deadline=None)
@given(
    order=st.permutations(list(range(len(PROMPT_LENGTHS)))),
    max_batch_size=st.integers(min_value=1, max_value=4),
    pool_pages=st.integers(min_value=8, max_value=14),
    data=st.data(),
)
def test_admission_schedules_reproduce_solo_outputs(
    admission_policy, kv_dtype, order, max_batch_size, pool_pages, data
):
    subset = order[: data.draw(st.integers(min_value=1, max_value=len(order)))]
    engine = ContinuousBatchingEngine(
        _MODEL,
        max_batch_size=max_batch_size,
        max_pool_tokens=pool_pages * 16,
        kv_dtype=kv_dtype,
        admission_policy=admission_policy,
    )
    states = [
        engine.submit(_PROMPTS[kv_dtype][i], _CONFIG, sampler=GreedySampler())
        for i in subset
    ]
    while engine.has_work:
        engine.step()
        # Strict pool audit after every step: refcount cross-reference,
        # registry chain audit and SLRU segment-vs-pin cross-check — so a
        # reclaim that broke a chain or leaked a segment entry fails here,
        # at the step that caused it.
        engine.check_invariants(strict=True)
    for state, request_index in zip(states, subset):
        expected = _EXPECTED[kv_dtype][request_index]
        assert state.tokens == expected.sequences[0]
        assert state.result().log_probs == expected.log_probs
        assert state.n_steps == expected.n_steps
    # Zero leaked pages: every row retired, so the only remaining page
    # references are the registry's prefix pins — one page per layer per
    # registered chunk.
    registry = engine._manager.registry
    for pool in engine._manager.store.pools:
        assert pool.used_pages == len(registry)
    assert registry.audit() == []
