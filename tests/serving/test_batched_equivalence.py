"""Batch-equals-sequential golden equivalence for the serving engine.

The serving engine's core invariant: at float64, decoding a ragged batch of
requests through the continuous-batching engine produces **byte-identical**
token sequences (and bit-identical log-probabilities and cache statistics) to
running each request alone through ``Generator.generate``.  These tests pin
that invariant for every eviction-policy family the paper evaluates (full,
window, H2O, Keyformer) across positional-encoding variants, with mixed
prompt lengths in one batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import (
    FullAttentionPolicy,
    H2OPolicy,
    WindowAttentionPolicy,
)
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import BatchedGenerator

VOCAB = 96
PROMPT_LENGTHS = (48, 31, 40, 23)
MAX_NEW_TOKENS = 20

POLICY_FACTORIES = {
    "full": FullAttentionPolicy,
    "window": lambda: WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5)),
    "h2o": lambda: H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5)),
    "keyformer": lambda: KeyformerPolicy(KeyformerConfig(kv_fraction=0.5)),
}


def make_model(positional: str = "rope", **overrides) -> DecoderLM:
    config = dict(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional=positional,
    )
    config.update(overrides)
    return DecoderLM(ModelConfig(**config), seed=0)


def make_prompts() -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    return [rng.integers(0, VOCAB, size=n).astype(np.int64) for n in PROMPT_LENGTHS]


def sequential_results(model, factory, prompts, config, sampler=None):
    return [
        Generator(model, factory()).generate(
            prompt, config, sampler=sampler() if sampler else GreedySampler()
        )
        for prompt in prompts
    ]


def assert_identical(sequential, batched):
    for seq, bat in zip(sequential, batched):
        assert bat.sequences[0] == seq.sequences[0]
        # Bit-identical accumulation, not approximate equality.
        assert bat.log_probs[0] == seq.log_probs[0]
        assert bat.n_steps == seq.n_steps
        assert bat.prompt_lengths == seq.prompt_lengths
        assert bat.cache_stats.lengths_per_step == seq.cache_stats.lengths_per_step
        assert bat.cache_stats.total_appended == seq.cache_stats.total_appended
        assert bat.cache_stats.total_evicted == seq.cache_stats.total_evicted


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
    @pytest.mark.parametrize("positional", ["rope", "alibi", "learned"])
    def test_mixed_length_batch_bit_identical(self, policy_name, positional):
        """Batch of 4 mixed-length requests == 4 dedicated runs, per policy."""
        model = make_model(positional)
        factory = POLICY_FACTORIES[policy_name]
        prompts = make_prompts()
        config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
        sequential = sequential_results(model, factory, prompts, config)
        batched = BatchedGenerator(
            model, policy_factory=factory, max_batch_size=len(prompts)
        ).generate_batch(prompts, config, sampler=GreedySampler())
        assert_identical(sequential, batched)

    def test_keyformer_renumbered_positions(self):
        """Keyformer (New Pos) exercises the renumbered-position batch path."""
        model = make_model("rope")
        factory = lambda: KeyformerPolicy(  # noqa: E731
            KeyformerConfig(kv_fraction=0.5, positional_mode="new")
        )
        prompts = make_prompts()
        config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
        sequential = sequential_results(model, factory, prompts, config)
        batched = BatchedGenerator(
            model, policy_factory=factory, max_batch_size=4
        ).generate_batch(prompts, config, sampler=GreedySampler())
        assert_identical(sequential, batched)

    def test_fixed_budget_window_batch(self):
        """Absolute budgets converge all rows to one length (suffix-eviction
        steady state) — the O(1) start-offset path must stay bit-exact."""
        model = make_model("rope")
        factory = lambda: WindowAttentionPolicy(  # noqa: E731
            CachePolicyConfig(kv_budget=16)
        )
        prompts = make_prompts()
        config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
        sequential = sequential_results(model, factory, prompts, config)
        batched = BatchedGenerator(
            model, policy_factory=factory, max_batch_size=4
        ).generate_batch(prompts, config, sampler=GreedySampler())
        assert_identical(sequential, batched)

    def test_stochastic_sampling_per_request_rngs(self):
        """Per-request samplers keep top-k sampling bit-identical to solo runs."""
        model = make_model("rope")
        prompts = make_prompts()
        config = GenerationConfig(max_new_tokens=12, temperature=0.9, top_k=8, seed=3)
        sequential = [
            Generator(model, FullAttentionPolicy()).generate(p, config)
            for p in prompts
        ]
        batched = BatchedGenerator(
            model, policy_factory=FullAttentionPolicy, max_batch_size=4
        ).generate_batch(prompts, config)
        assert_identical(sequential, batched)

    def test_single_request_matches_generator_result(self):
        """The Generator-compatible wrapper is a drop-in for one sequence."""
        model = make_model("rope")
        prompt = make_prompts()[0]
        config = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
        seq = Generator(model, FullAttentionPolicy()).generate(
            prompt, config, sampler=GreedySampler()
        )
        bat = BatchedGenerator(model, policy_factory=FullAttentionPolicy).generate(
            prompt, config, sampler=GreedySampler()
        )
        assert bat.sequences == seq.sequences
        assert bat.log_probs == seq.log_probs
        assert bat.n_steps == seq.n_steps
        assert bat.cache_stats.lengths_per_step == seq.cache_stats.lengths_per_step

    def test_2d_prompt_batch_one_request_per_row(self):
        model = make_model("rope")
        rng = np.random.default_rng(11)
        prompts_2d = rng.integers(0, VOCAB, size=(3, 24)).astype(np.int64)
        config = GenerationConfig(max_new_tokens=8)
        result = BatchedGenerator(
            model, policy_factory=FullAttentionPolicy, max_batch_size=3
        ).generate(prompts_2d, config, sampler=GreedySampler())
        sequential = sequential_results(
            model, FullAttentionPolicy, list(prompts_2d), config
        )
        assert result.sequences == [r.sequences[0] for r in sequential]
        assert result.log_probs == [r.log_probs[0] for r in sequential]


class TestFloat32ThroughputMode:
    """float32 runs fully batched (masked padded attention); held to the
    documented inference tolerance rather than bit parity."""

    def test_first_decode_logits_close(self):
        model = make_model("rope", compute_dtype="float32")
        prompts = make_prompts()
        config = GenerationConfig(max_new_tokens=4)
        sequential = sequential_results(model, FullAttentionPolicy, prompts, config)
        batched = BatchedGenerator(
            model, policy_factory=FullAttentionPolicy, max_batch_size=4
        ).generate_batch(prompts, config, sampler=GreedySampler())
        for seq, bat in zip(sequential, batched):
            np.testing.assert_allclose(
                bat.log_probs[0], seq.log_probs[0], rtol=1e-2, atol=1e-2
            )
