"""Chunked-prefill interleaving: bit-exact, leak-free, actually interleaved.

A scheduler with ``prefill_chunk_tokens`` set makes the engine split any
long prompt into per-step chunks through ``forward_suffix`` instead of one
monolithic prefill.  These tests pin the three contracts that make the
feature safe to enable by default in the load harness:

* **Equivalence** — chunked output (tokens, log-probs) is bit-identical to
  the solo ``Generator`` run across all four eviction-policy families and
  all positional encodings, including the 1-token-remainder absorption
  corner.
* **Interleaving** — running decode rows keep producing tokens during a
  neighbour's chunked prefill, and the per-step prefill-token telemetry
  respects the chunk budget.
* **Robustness** — aborting mid-chunk leaks nothing (the accumulator never
  touched the pool), prefix-shared prompts skip chunking (a registry hit
  already pays less than a chunk), and injected prefill faults retry to a
  bit-exact result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import (
    FullAttentionPolicy,
    H2OPolicy,
    WindowAttentionPolicy,
)
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.scheduler import PagedScheduler

VOCAB = 96
CHUNK = 16
_CONFIG = GenerationConfig(max_new_tokens=8)

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)

#: Lengths that cover: many chunks, chunk+remainder-absorption (CHUNK+1 over
#: two chunks would leave 1 token), an exact multiple, and a short prompt
#: below the chunking threshold.
PROMPT_LENGTHS = (97, 33, 48, 9)

_RNG = np.random.default_rng(5)
_PROMPTS = [_RNG.integers(0, VOCAB, size=n).astype(np.int64) for n in PROMPT_LENGTHS]

_POLICIES = {
    "full": FullAttentionPolicy,
    "window": lambda: WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5)),
    "h2o": lambda: H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5)),
    "keyformer": lambda: KeyformerPolicy(KeyformerConfig(kv_fraction=0.5)),
}

_EXPECTED = {
    name: [
        Generator(_MODEL, factory()).generate(p, _CONFIG, sampler=GreedySampler())
        for p in _PROMPTS
    ]
    for name, factory in _POLICIES.items()
}


def _expected_chunks(prompt_len: int, chunk: int) -> int:
    """Chunk-step count the engine should take for one prompt."""
    if prompt_len <= chunk + 1:
        return 0  # below threshold: not chunked at all
    done, steps = 0, 0
    while done < prompt_len:
        remaining = prompt_len - done
        done += remaining if remaining <= chunk + 1 else chunk
        steps += 1
    return steps


@pytest.mark.parametrize("policy_name", sorted(_POLICIES))
def test_chunked_prefill_bit_exact(policy_name):
    """Chunked engine output matches solo generation across policies."""
    factory = _POLICIES[policy_name]
    engine = ContinuousBatchingEngine(
        _MODEL,
        policy_factory=factory,
        scheduler=PagedScheduler(max_batch_size=4, prefill_chunk_tokens=CHUNK),
    )
    states = [
        engine.submit(p, _CONFIG, sampler=GreedySampler()) for p in _PROMPTS
    ]
    engine.run()
    if _POLICIES[policy_name]().needs_prompt_attention:
        # h2o/keyformer initialize scores from full prompt attention, which
        # the chunked path never materializes: the engine must fall back to
        # monolithic prefill for them (and stay bit-exact, checked below).
        assert engine.n_prefill_chunks == 0
    else:
        # One chunked prefill at a time: the longest prompt chunks while
        # the rest (admitted in the same step) prefill normally alongside.
        assert engine.n_prefill_chunks == _expected_chunks(PROMPT_LENGTHS[0], CHUNK)
    for state, expected in zip(states, _EXPECTED[policy_name]):
        result = state.result()
        assert result.sequences[0] == expected.sequences[0]
        assert result.log_probs[0] == expected.log_probs[0]


@pytest.mark.parametrize("prompt_len", PROMPT_LENGTHS)
def test_chunk_count_per_prompt(prompt_len):
    """Solo replays take exactly the predicted chunk steps (incl. the
    1-token-remainder absorption: 33 tokens at budget 16 is two chunks of
    16 + 17, never a trailing 1-token chunk)."""
    prompt = np.random.default_rng(prompt_len).integers(0, VOCAB, size=prompt_len)
    engine = ContinuousBatchingEngine(
        _MODEL, scheduler=PagedScheduler(max_batch_size=2, prefill_chunk_tokens=CHUNK)
    )
    state = engine.submit(prompt, _CONFIG, sampler=GreedySampler())
    engine.run()
    assert engine.n_prefill_chunks == _expected_chunks(prompt_len, CHUNK)
    expected = Generator(_MODEL).generate(prompt, _CONFIG, sampler=GreedySampler())
    assert state.result().sequences[0] == expected.sequences[0]
    assert state.result().log_probs[0] == expected.log_probs[0]


@pytest.mark.parametrize("positional", ["rope", "alibi", "learned"])
def test_chunked_prefill_positional_variants(positional):
    """Chunked prefill is exact for alibi and learned positions too."""
    config = ModelConfig(
        vocab_size=64,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional=positional,
    )
    model = DecoderLM(config, seed=0)
    rng = np.random.default_rng(9)
    prompts = [rng.integers(0, 64, size=n).astype(np.int64) for n in (55, 21)]
    expected = [
        Generator(model).generate(p, _CONFIG, sampler=GreedySampler())
        for p in prompts
    ]
    engine = ContinuousBatchingEngine(
        model, scheduler=PagedScheduler(max_batch_size=2, prefill_chunk_tokens=CHUNK)
    )
    states = [engine.submit(p, _CONFIG, sampler=GreedySampler()) for p in prompts]
    engine.run()
    assert engine.n_prefill_chunks > 0
    for state, exp in zip(states, expected):
        assert state.result().sequences[0] == exp.sequences[0]
        assert state.result().log_probs[0] == exp.log_probs[0]


def test_decode_interleaves_with_chunked_prefill():
    """Running rows generate tokens while a neighbour's prefill is chunked."""
    engine = ContinuousBatchingEngine(
        _MODEL, scheduler=PagedScheduler(max_batch_size=2, prefill_chunk_tokens=CHUNK)
    )
    short = engine.submit(_PROMPTS[3], _CONFIG, sampler=GreedySampler())
    engine.step()  # short prefills and starts decoding
    long = engine.submit(_PROMPTS[0], _CONFIG, sampler=GreedySampler())
    grew = 0
    while not long.tokens and engine.has_work:
        before = len(short.tokens)
        engine.step()
        if engine.last_step_prefill_tokens > 0 and len(short.tokens) > before:
            grew += 1
        assert engine.last_step_prefill_tokens <= CHUNK + 1
    assert grew > 0, "short request never decoded during the chunked prefill"
    engine.run()
    assert short.result().sequences[0] == _EXPECTED["full"][3].sequences[0]
    assert long.result().sequences[0] == _EXPECTED["full"][0].sequences[0]


def test_abort_mid_chunk_leaks_nothing():
    """Dropping an in-flight chunked prefill releases no pages (it held none)."""
    engine = ContinuousBatchingEngine(
        _MODEL, scheduler=PagedScheduler(max_batch_size=2, prefill_chunk_tokens=CHUNK)
    )
    state = engine.submit(_PROMPTS[0], _CONFIG, sampler=GreedySampler())
    engine.step()  # first chunk in flight, no pages allocated yet
    assert engine.n_prefill_chunks >= 1
    assert engine.abort(state.request_id)
    assert state.finish_reason is not None
    assert not engine.has_work
    engine.check_invariants()
    usage = engine.pool_usage()
    assert usage["pages_used"] == 0


def test_prefix_hit_skips_chunking():
    """A prompt the registry already holds prefills via reuse, not chunks."""
    engine = ContinuousBatchingEngine(
        _MODEL, scheduler=PagedScheduler(max_batch_size=2, prefill_chunk_tokens=CHUNK)
    )
    first = engine.submit(_PROMPTS[0], _CONFIG, sampler=GreedySampler())
    engine.run()
    chunks_after_first = engine.n_prefill_chunks
    assert chunks_after_first == _expected_chunks(PROMPT_LENGTHS[0], CHUNK)
    second = engine.submit(_PROMPTS[0], _CONFIG, sampler=GreedySampler())
    engine.run()
    assert engine.n_prefill_chunks == chunks_after_first, (
        "prefix-shared prompt should not re-chunk"
    )
    assert second.result().sequences[0] == first.result().sequences[0]


def test_chunked_prefill_under_tight_pool():
    """Chunked joins under a small fixed pool preempt and still finish exact."""
    policy = lambda: WindowAttentionPolicy(CachePolicyConfig(kv_budget=48))  # noqa: E731
    expected = [
        Generator(_MODEL, policy()).generate(p, _CONFIG, sampler=GreedySampler())
        for p in _PROMPTS
    ]
    engine = ContinuousBatchingEngine(
        _MODEL,
        policy_factory=policy,
        scheduler=PagedScheduler(max_batch_size=4, prefill_chunk_tokens=CHUNK),
        max_pool_tokens=256,
    )
    states = [engine.submit(p, _CONFIG, sampler=GreedySampler()) for p in _PROMPTS]
    engine.run()
    engine.check_invariants()
    for state, exp in zip(states, expected):
        assert state.result().sequences[0] == exp.sequences[0]
        assert state.result().log_probs[0] == exp.log_probs[0]


def test_chunked_prefill_with_injected_faults():
    """Injected prefill faults retry chunked prompts to a bit-exact result."""
    from repro.serving.faults import FaultInjector

    engine = ContinuousBatchingEngine(
        _MODEL,
        scheduler=PagedScheduler(max_batch_size=2, prefill_chunk_tokens=CHUNK),
        faults=FaultInjector(rate=0.05, seed=3),
        max_retries=8,
        retry_backoff_steps=1,
    )
    states = [engine.submit(p, _CONFIG, sampler=GreedySampler()) for p in _PROMPTS[:2]]
    engine.run()
    engine.check_invariants()
    for state, exp in zip(states, _EXPECTED["full"][:2]):
        assert state.finish_reason is not None
        if state.finish_reason.value in ("eos", "length"):
            assert state.result().sequences[0] == exp.sequences[0]
