"""Property test: injected faults never corrupt survivors or leak pages.

The quarantine contract (``docs/robustness.md``): a fault in one request's
lifecycle may change *that request's* fate — retried transparently, or
retired with ``FinishReason.ERROR`` — but every request that completes
normally must reproduce the fault-free run bit for bit, and the paged store
must end every run with zero leaked pages and clean refcounts.

Hypothesis drives seeded fault schedules across the full configuration
matrix: eviction policy (full / window / h2o / keyformer), KV precision
(float64 / int8) and speculation (off / n-gram / self-drafting), with faults
enabled at all five injection points.  Each example runs the same workload
twice — fault-free reference, then faulted — and checks equivalence plus a
strict pool-integrity audit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import (
    FullAttentionPolicy,
    H2OPolicy,
    WindowAttentionPolicy,
)
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.faults import FaultInjector
from repro.serving.request import FinishReason
from repro.speculative.config import SpeculationConfig

VOCAB = 96
MAX_NEW_TOKENS = 8
PROMPT_LENGTHS = (41, 18, 29, 37)

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)
_RNG = np.random.default_rng(43)
_PROMPTS = [_RNG.integers(0, VOCAB, size=n).astype(np.int64) for n in PROMPT_LENGTHS]
_CONFIG = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)

_POLICIES = {
    "full": FullAttentionPolicy,
    "window": lambda: WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5)),
    "h2o": lambda: H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5)),
    "keyformer": lambda: KeyformerPolicy(KeyformerConfig(kv_fraction=0.5)),
}

#: (policy, kv_dtype, speculation) corners of the configuration matrix.
#: Speculation requires the full-attention target (the sparse policy lives
#: in the drafter), so spec rows pair with "full" only.
_MATRIX = [
    ("full", None, None),
    ("window", None, None),
    ("h2o", None, None),
    ("keyformer", None, None),
    ("full", "int8", None),
    ("window", "int8", None),
    ("full", None, "ngram"),
    ("full", None, "window"),
    ("full", "int8", "ngram"),
]


def _run_workload(policy_name, kv_dtype, spec, faults, max_batch_size):
    speculation = None if spec is None else SpeculationConfig(k=3, drafter=spec)
    engine = ContinuousBatchingEngine(
        _MODEL,
        policy_factory=_POLICIES[policy_name],
        max_batch_size=max_batch_size,
        kv_dtype=kv_dtype,
        enable_prefix_sharing=False,
        speculation=speculation,
        faults=faults,
        max_retries=3,
        retry_backoff_steps=1,
    )
    states = [engine.submit(p, _CONFIG, sampler=GreedySampler()) for p in _PROMPTS]
    engine.run()
    return engine, states


def _assert_store_clean(engine):
    """Strict audit + zero leaked pages once the prefix registry lets go."""
    assert engine.check_invariants() == []
    if engine._manager is None:
        return
    engine._manager.registry.clear()
    for pool in engine._manager.store.pools:
        assert int((pool.refcounts != 0).sum()) == 0
        assert pool.free_pages == pool.n_pages


@pytest.mark.parametrize("policy_name,kv_dtype,spec", _MATRIX)
@settings(max_examples=4, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=2**16),
    rate=st.sampled_from([0.002, 0.01, 0.05]),
    max_batch_size=st.integers(min_value=2, max_value=4),
)
def test_faulted_runs_match_fault_free_reference(
    policy_name, kv_dtype, spec, fault_seed, rate, max_batch_size
):
    _, reference = _run_workload(policy_name, kv_dtype, spec, None, max_batch_size)
    faults = FaultInjector(rate=rate, seed=fault_seed)
    engine, states = _run_workload(policy_name, kv_dtype, spec, faults, max_batch_size)

    for state, ref in zip(states, reference):
        assert state.finished
        if state.finish_reason is FinishReason.ERROR:
            # Quarantined after exhausting its retries: the error context
            # must be preserved, and the rest of the batch unaffected.
            assert state.error is not None
            assert state.error_traceback
            continue
        # Non-faulted and retried-to-success requests alike are bit-exact:
        # a retry restarts from scratch with fresh policy/sampler state.
        assert state.finish_reason is ref.finish_reason
        assert state.tokens == ref.tokens
        assert state.result().log_probs == ref.result().log_probs
    _assert_store_clean(engine)

    # Telemetry is consistent with what actually happened.
    telemetry = engine.fault_telemetry()
    assert telemetry["faults_fired"] == len(faults.fired)
    assert telemetry["faults"] >= telemetry["retries"]


@pytest.mark.parametrize("policy_name,kv_dtype,spec", _MATRIX)
def test_replayed_schedule_reproduces_the_run(policy_name, kv_dtype, spec):
    """A recorded fault schedule replays to the identical outcome."""
    faults = FaultInjector(rate=0.02, seed=9)
    engine, states = _run_workload(policy_name, kv_dtype, spec, faults, 3)
    replay = faults.replay()
    engine2, states2 = _run_workload(policy_name, kv_dtype, spec, replay, 3)
    assert replay.fired == faults.fired
    for a, b in zip(states, states2):
        assert a.finish_reason is b.finish_reason
        assert a.tokens == b.tokens
        assert a.retries == b.retries
    _assert_store_clean(engine)
    _assert_store_clean(engine2)


@pytest.mark.parametrize("point", ["page_alloc", "prefill", "decode", "verify", "draft"])
@pytest.mark.parametrize("kv_dtype", [None, "int8"])
def test_every_injection_point_quarantines_cleanly(point, kv_dtype):
    """One guaranteed fault at each injection point, speculative + quantized.

    The spec path reaches ``verify``/``draft`` (and the vanilla batched
    decode reaches ``decode``, which speculation replaces with rounds); with
    a retry budget the faulted request must still finish bit-identically to
    the fault-free run.
    """
    spec = None if point == "decode" else "window"
    occurrence = 3 if point == "page_alloc" else 1
    _, reference = _run_workload("full", kv_dtype, spec, None, 3)
    faults = FaultInjector(schedule=[(point, occurrence)])
    engine, states = _run_workload(
        "full", kv_dtype, spec, faults, 3
    )
    assert faults.fired == [(point, occurrence)]
    for state, ref in zip(states, reference):
        assert state.finish_reason is ref.finish_reason
        assert state.tokens == ref.tokens
    _assert_store_clean(engine)


def test_mid_run_audit_stays_clean_under_faults():
    """check_invariants holds after every engine step, not just at the end."""
    faults = FaultInjector(rate=0.05, seed=3)
    engine = ContinuousBatchingEngine(
        _MODEL,
        policy_factory=_POLICIES["window"],
        max_batch_size=3,
        max_pool_tokens=24 * 16,
        faults=faults,
        max_retries=2,
        retry_backoff_steps=1,
    )
    for p in _PROMPTS:
        engine.submit(p, _CONFIG, sampler=GreedySampler())
    while engine.has_work:
        engine.step()
        assert engine.check_invariants() == []
    _assert_store_clean(engine)
