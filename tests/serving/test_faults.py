"""Unit tests for the fault-tolerance layer: injector determinism and replay,
watchdog livelock detection, deadlines, retries, load shedding and the
engine's pool-integrity audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import FullAttentionPolicy
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.faults import (
    INJECTION_POINTS,
    EngineWatchdog,
    FaultInjector,
    InjectedFault,
    LivelockError,
)
from repro.serving.request import FinishReason, RequestStatus

VOCAB = 96


def make_model(**overrides) -> DecoderLM:
    config = dict(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=512,
        positional="rope",
    )
    config.update(overrides)
    return DecoderLM(ModelConfig(**config), seed=0)


def prompts_for(rng, n, length=24):
    return [rng.integers(0, VOCAB, size=length).astype(np.int64) for _ in range(n)]


def solo(model, prompt, config):
    return Generator(model, FullAttentionPolicy()).generate(
        prompt, config, sampler=GreedySampler()
    )


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_decisions_are_deterministic_and_order_independent(self):
        a = FaultInjector(rate=0.3, seed=7)
        b = FaultInjector(rate=0.3, seed=7)
        decisions_a = [a.should_fire("decode", i) for i in range(200)]
        # Interleave other points' checks: decode's stream must not shift.
        for i in range(200):
            b.should_fire("verify", i)
            b.should_fire("page_alloc", i)
        decisions_b = [b.should_fire("decode", i) for i in range(200)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_differ(self):
        a = [FaultInjector(rate=0.3, seed=1).should_fire("decode", i) for i in range(64)]
        b = [FaultInjector(rate=0.3, seed=2).should_fire("decode", i) for i in range(64)]
        assert a != b

    def test_check_counts_and_fires(self):
        injector = FaultInjector(rate=1.0, seed=0)
        with pytest.raises(InjectedFault) as excinfo:
            injector.check("prefill", request_id=5)
        assert excinfo.value.point == "prefill"
        assert excinfo.value.occurrence == 0
        assert excinfo.value.request_id == 5
        assert injector.counters["prefill"] == 1
        assert injector.fired == [("prefill", 0)]

    def test_points_subset_gates_firing_but_counters_advance(self):
        injector = FaultInjector(rate=1.0, seed=0, points=("verify",))
        injector.check("decode")  # must not raise
        assert injector.counters["decode"] == 1
        with pytest.raises(InjectedFault):
            injector.check("verify")

    def test_max_faults_caps_firing(self):
        injector = FaultInjector(rate=1.0, seed=0, max_faults=1)
        with pytest.raises(InjectedFault):
            injector.check("decode")
        injector.check("decode")  # cap reached: silent
        assert injector.counters["decode"] == 2
        assert len(injector.fired) == 1

    def test_replay_fires_identical_schedule(self):
        original = FaultInjector(rate=0.25, seed=11)
        fired = []
        for i in range(100):
            try:
                original.check("decode")
            except InjectedFault:
                fired.append(("decode", i))
        assert original.fired == fired
        replayed = original.replay()
        refired = []
        for i in range(100):
            try:
                replayed.check("decode")
            except InjectedFault:
                refired.append(("decode", i))
        assert refired == fired

    def test_hook_closure_checks_named_point(self):
        injector = FaultInjector(rate=1.0, seed=0)
        hook = injector.hook("page_alloc")
        with pytest.raises(InjectedFault) as excinfo:
            hook()
        assert excinfo.value.point == "page_alloc"
        assert excinfo.value.request_id is None

    def test_rejects_unknown_points_and_bad_rate(self):
        with pytest.raises(ValueError):
            FaultInjector(points=("warp_core",))
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector().check("warp_core")

    def test_all_injection_points_listed(self):
        assert INJECTION_POINTS == (
            "page_alloc",
            "prefill",
            "decode",
            "verify",
            "draft",
            "spill_io",
        )


# ----------------------------------------------------------------------
# EngineWatchdog
# ----------------------------------------------------------------------
class TestEngineWatchdog:
    def test_no_progress_livelock(self):
        dog = EngineWatchdog(no_progress_patience=3)
        for _ in range(3):
            dog.observe(False)
        with pytest.raises(LivelockError, match="no-progress"):
            dog.observe(False)

    def test_progress_resets_counters(self):
        dog = EngineWatchdog(no_progress_patience=2, preemption_patience=2)
        dog.observe(False, preemptions=2)
        dog.observe(True)
        assert dog.stalled_steps == 0
        assert dog.preemptions_since_progress == 0

    def test_preemption_thrash(self):
        dog = EngineWatchdog(no_progress_patience=100, preemption_patience=4)
        dog.observe(False, preemptions=3)
        with pytest.raises(LivelockError, match="thrash"):
            dog.observe(False, preemptions=2)

    def test_reset_clears(self):
        dog = EngineWatchdog(no_progress_patience=2)
        dog.observe(False)
        dog.reset()
        assert dog.stalled_steps == 0

    def test_rejects_nonpositive_patience(self):
        with pytest.raises(ValueError):
            EngineWatchdog(no_progress_patience=0)


# ----------------------------------------------------------------------
# Engine: deadlines, retries, shedding, quarantine, auditing
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_running_request_times_out(self):
        model = make_model()
        engine = ContinuousBatchingEngine(model, max_batch_size=2)
        rng = np.random.default_rng(0)
        config = GenerationConfig(max_new_tokens=64)
        state = engine.submit(
            prompts_for(rng, 1)[0], config, sampler=GreedySampler(), deadline_steps=5
        )
        engine.run()
        assert state.finish_reason is FinishReason.TIMEOUT
        assert 0 < len(state.tokens) < 64
        assert engine.n_timeouts == 1
        # Nothing leaked: pools clean after retirement.
        assert engine.check_invariants() == []

    def test_queued_request_times_out_without_running(self):
        model = make_model()
        # Batch of one: the second request waits in the queue past its deadline.
        engine = ContinuousBatchingEngine(model, max_batch_size=1)
        rng = np.random.default_rng(1)
        config = GenerationConfig(max_new_tokens=16)
        p1, p2 = prompts_for(rng, 2)
        first = engine.submit(p1, config, sampler=GreedySampler())
        second = engine.submit(p2, config, sampler=GreedySampler(), deadline_steps=4)
        engine.run()
        assert first.finish_reason is FinishReason.LENGTH
        assert second.finish_reason is FinishReason.TIMEOUT
        assert second.tokens == []
        assert engine.n_timeouts == 1

    def test_engine_default_applies_and_submit_overrides(self):
        model = make_model()
        engine = ContinuousBatchingEngine(model, max_batch_size=2, deadline_steps=3)
        rng = np.random.default_rng(2)
        config = GenerationConfig(max_new_tokens=24)
        capped = engine.submit(prompts_for(rng, 1)[0], config, sampler=GreedySampler())
        roomy = engine.submit(
            prompts_for(rng, 1)[0], config, sampler=GreedySampler(), deadline_steps=500
        )
        engine.run()
        assert capped.finish_reason is FinishReason.TIMEOUT
        assert roomy.finish_reason is FinishReason.LENGTH

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            ContinuousBatchingEngine(make_model(), deadline_steps=0)


class TestRetries:
    def test_prefill_fault_retries_then_succeeds_bit_exact(self):
        model = make_model()
        rng = np.random.default_rng(3)
        prompt = prompts_for(rng, 1)[0]
        config = GenerationConfig(max_new_tokens=8)
        faults = FaultInjector(schedule=[("prefill", 0)])
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, faults=faults, max_retries=2, retry_backoff_steps=2
        )
        state = engine.submit(prompt, config, sampler=GreedySampler())
        engine.run()
        assert state.finish_reason is FinishReason.LENGTH
        assert state.retries == 1
        assert state.error is not None and "prefill" in state.error
        assert "InjectedFault" in state.error_traceback
        reference = solo(model, prompt, config)
        assert state.tokens == reference.sequences[0]
        assert state.result().log_probs == reference.log_probs
        assert engine.n_faults == 1 and engine.n_retries == 1

    def test_retry_backoff_blocks_readmission(self):
        model = make_model()
        rng = np.random.default_rng(4)
        prompt = prompts_for(rng, 1)[0]
        faults = FaultInjector(schedule=[("prefill", 0)])
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, faults=faults, max_retries=1, retry_backoff_steps=4
        )
        state = engine.submit(
            prompt, GenerationConfig(max_new_tokens=4), sampler=GreedySampler()
        )
        engine.step()  # fault fires; requeued with retry_at = 1 + 4*2^0 = 5
        assert state.retry_at == engine.step_count + 4
        while engine.has_work and engine.n_running == 0:
            engine.step()
        # Re-admission happened only once the backoff window elapsed
        # (admission opens at the first step where step_count >= retry_at).
        assert engine.step_count >= state.retry_at
        engine.run()
        assert state.finish_reason is FinishReason.LENGTH

    def test_retry_budget_exhausted_retires_with_error(self):
        model = make_model()
        rng = np.random.default_rng(5)
        prompt = prompts_for(rng, 1)[0]
        # Every prefill attempt faults; one retry allowed -> second failure final.
        faults = FaultInjector(schedule=[("prefill", 0), ("prefill", 1)])
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, faults=faults, max_retries=1, retry_backoff_steps=1
        )
        state = engine.submit(
            prompt, GenerationConfig(max_new_tokens=4), sampler=GreedySampler()
        )
        engine.run()
        assert state.finish_reason is FinishReason.ERROR
        assert state.retries == 1
        assert state.tokens == []
        assert engine.n_faults == 2 and engine.n_retries == 1
        assert engine.check_invariants() == []

    def test_fault_without_tolerance_propagates(self):
        model = make_model()
        rng = np.random.default_rng(6)
        faults = FaultInjector(schedule=[("prefill", 0)])
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, faults=faults, fault_tolerant=False
        )
        engine.submit(
            prompts_for(rng, 1)[0],
            GenerationConfig(max_new_tokens=4),
            sampler=GreedySampler(),
        )
        with pytest.raises(InjectedFault):
            engine.run()


class TestQuarantine:
    def test_decode_fault_quarantines_one_row_survivors_bit_exact(self):
        model = make_model()
        rng = np.random.default_rng(7)
        prompts = prompts_for(rng, 3)
        config = GenerationConfig(max_new_tokens=10)
        # Fire the decode point once: the faulted row retires with ERROR
        # (no retries), the other rows must be untouched.
        faults = FaultInjector(schedule=[("decode", 4)])
        engine = ContinuousBatchingEngine(model, max_batch_size=3, faults=faults)
        states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
        engine.run()
        errored = [s for s in states if s.finish_reason is FinishReason.ERROR]
        survivors = [s for s in states if s.finish_reason is FinishReason.LENGTH]
        assert len(errored) == 1 and len(survivors) == 2
        assert errored[0].error is not None
        for state, prompt in zip(states, prompts):
            if state in survivors:
                reference = solo(model, prompt, config)
                assert state.tokens == reference.sequences[0]
                assert state.result().log_probs == reference.log_probs
        assert engine.check_invariants() == []

    def test_decode_fault_with_retry_is_transparent(self):
        model = make_model()
        rng = np.random.default_rng(8)
        prompts = prompts_for(rng, 2)
        config = GenerationConfig(max_new_tokens=8)
        faults = FaultInjector(schedule=[("decode", 3)])
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, faults=faults, max_retries=1, retry_backoff_steps=1
        )
        states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
        engine.run()
        for state, prompt in zip(states, prompts):
            assert state.finish_reason is FinishReason.LENGTH
            reference = solo(model, prompt, config)
            assert state.tokens == reference.sequences[0]
            assert state.result().log_probs == reference.log_probs
        assert engine.n_retries == 1
        assert engine.check_invariants() == []

    def test_page_alloc_fault_during_prefill_is_quarantined(self):
        model = make_model()
        rng = np.random.default_rng(9)
        prompt = prompts_for(rng, 1)[0]
        faults = FaultInjector(schedule=[("page_alloc", 2)])
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, faults=faults, max_retries=1, retry_backoff_steps=1
        )
        state = engine.submit(
            prompt, GenerationConfig(max_new_tokens=6), sampler=GreedySampler()
        )
        engine.run()
        assert state.finish_reason is FinishReason.LENGTH
        reference = solo(model, prompt, GenerationConfig(max_new_tokens=6))
        assert state.tokens == reference.sequences[0]
        assert engine.check_invariants() == []


class TestShedding:
    def test_shed_requires_queue_depth_and_pool_pressure(self):
        model = make_model()
        engine = ContinuousBatchingEngine(
            model,
            max_batch_size=1,
            max_pool_tokens=256,
            shed_queue_depth=2,
        )
        rng = np.random.default_rng(10)
        config = GenerationConfig(max_new_tokens=96)
        prompts = prompts_for(rng, 6, length=48)
        first = engine.submit(prompts[0], config, sampler=GreedySampler())
        # Run a few steps so the lone row grows into the fixed pool.
        for _ in range(80):
            engine.step()
        queued = [
            engine.submit(p, config, sampler=GreedySampler()) for p in prompts[1:5]
        ]
        # Queue is deep; whether the last submission sheds depends on pool
        # pressure, which the long-running row has built up by now.
        late = engine.submit(prompts[5], config, sampler=GreedySampler())
        if engine.n_shed:
            assert late.finish_reason is FinishReason.SHED
            assert late.status is RequestStatus.FINISHED
            assert late.tokens == []
        engine.run()
        assert first.finish_reason is FinishReason.LENGTH
        for state in queued:
            assert state.finish_reason is FinishReason.LENGTH

    def test_no_shedding_on_growable_store(self):
        model = make_model()
        engine = ContinuousBatchingEngine(model, max_batch_size=1, shed_queue_depth=1)
        rng = np.random.default_rng(11)
        config = GenerationConfig(max_new_tokens=4)
        states = [
            engine.submit(p, config, sampler=GreedySampler())
            for p in prompts_for(rng, 4)
        ]
        engine.run()
        assert engine.n_shed == 0
        assert all(s.finish_reason is FinishReason.LENGTH for s in states)

    def test_shed_validation(self):
        with pytest.raises(ValueError):
            ContinuousBatchingEngine(make_model(), shed_queue_depth=0)


class TestAuditingAndTelemetry:
    def test_check_invariants_clean_through_run(self):
        model = make_model()
        engine = ContinuousBatchingEngine(model, max_batch_size=3)
        rng = np.random.default_rng(12)
        config = GenerationConfig(max_new_tokens=6)
        for p in prompts_for(rng, 4):
            engine.submit(p, config, sampler=GreedySampler())
        while engine.has_work:
            engine.step()
            assert engine.check_invariants() == []
        assert engine.check_invariants() == []

    def test_check_invariants_detects_leaked_page(self):
        from repro.kvcache.paged import PoolIntegrityError

        model = make_model()
        engine = ContinuousBatchingEngine(model, max_batch_size=2)
        rng = np.random.default_rng(13)
        engine.submit(
            prompts_for(rng, 1)[0],
            GenerationConfig(max_new_tokens=8),
            sampler=GreedySampler(),
        )
        engine.step()
        # Simulate a leak: bump a live page's refcount behind the store's back.
        pool = engine._manager.store.pools[0]
        page = engine._manager.caches[0].tables[0].pages[0]
        pool.refcounts[page] += 1
        violations = engine.check_invariants(strict=False)
        assert violations and any("refcount" in v for v in violations)
        with pytest.raises(PoolIntegrityError):
            engine.check_invariants()
        pool.refcounts[page] -= 1  # restore so teardown stays clean

    def test_fault_telemetry_counters(self):
        model = make_model()
        faults = FaultInjector(schedule=[("prefill", 0)])
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, faults=faults, max_retries=1, retry_backoff_steps=1
        )
        rng = np.random.default_rng(14)
        state = engine.submit(
            prompts_for(rng, 1)[0],
            GenerationConfig(max_new_tokens=4),
            sampler=GreedySampler(),
        )
        engine.run()
        telemetry = engine.fault_telemetry()
        assert telemetry["faults"] == 1
        assert telemetry["retries"] == 1
        assert telemetry["faults_fired"] == 1
        assert telemetry["steps"] == engine.step_count > 0
        assert telemetry["tokens_recorded"] == len(state.tokens)

    def test_idle_polling_never_trips_watchdog(self):
        model = make_model()
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, watchdog=EngineWatchdog(no_progress_patience=4)
        )
        for _ in range(64):
            engine.step()  # idle: no work, watchdog must not observe
        assert engine.watchdog.stalled_steps == 0

    def test_validation_of_retry_params(self):
        with pytest.raises(ValueError):
            ContinuousBatchingEngine(make_model(), max_retries=-1)
        with pytest.raises(ValueError):
            ContinuousBatchingEngine(make_model(), retry_backoff_steps=-1)
