"""Property test: the paged serving engine is bit-identical to solo decoding
under random admit/decode/evict/retire schedules.

Hypothesis drives random request subsets, submission orders, engine widths,
pool sizes (fixed pools small enough to preempt) and prefix sharing across
all four eviction-policy families (full / window / h2o / keyformer).  Every
schedule exercises a different interleaving of joins, batched decode steps,
per-row evictions, retirements and (for tight pools) preemptions — and every
request must reproduce its dedicated single-request output exactly: tokens,
log-probabilities and cache statistics, bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import (
    FullAttentionPolicy,
    H2OPolicy,
    WindowAttentionPolicy,
)
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine

VOCAB = 96
MAX_NEW_TOKENS = 8
#: Mixed lengths, with a deliberate shared 32-token prefix between the first
#: and last prompt so prefix sharing participates in the random schedules.
PROMPT_LENGTHS = (41, 18, 29, 37)

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)

_RNG = np.random.default_rng(23)
_PROMPTS = [
    _RNG.integers(0, VOCAB, size=n).astype(np.int64) for n in PROMPT_LENGTHS
]
_PROMPTS[3] = np.concatenate([_PROMPTS[0][:32], _PROMPTS[3][32:]])
_CONFIG = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)

_POLICIES = {
    "full": FullAttentionPolicy,
    "window": lambda: WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5)),
    "h2o": lambda: H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5)),
    "keyformer": lambda: KeyformerPolicy(KeyformerConfig(kv_fraction=0.5)),
}

#: Dedicated single-request reference outputs, computed once per policy.
_EXPECTED = {
    name: [
        Generator(_MODEL, factory()).generate(p, _CONFIG, sampler=GreedySampler())
        for p in _PROMPTS
    ]
    for name, factory in _POLICIES.items()
}


@pytest.mark.parametrize("policy_name", sorted(_POLICIES))
@settings(max_examples=8, deadline=None)
@given(
    order=st.permutations(list(range(len(_PROMPTS)))),
    max_batch_size=st.integers(min_value=1, max_value=4),
    pool_pages=st.one_of(st.none(), st.integers(min_value=8, max_value=14)),
    data=st.data(),
)
def test_random_schedules_reproduce_solo_outputs(
    policy_name, order, max_batch_size, pool_pages, data
):
    subset = order[: data.draw(st.integers(min_value=1, max_value=len(order)))]
    engine = ContinuousBatchingEngine(
        _MODEL,
        policy_factory=_POLICIES[policy_name],
        max_batch_size=max_batch_size,
        max_pool_tokens=None if pool_pages is None else pool_pages * 16,
    )
    states = [
        engine.submit(_PROMPTS[i], _CONFIG, sampler=GreedySampler()) for i in subset
    ]
    engine.run()
    for state, request_index in zip(states, subset):
        expected = _EXPECTED[policy_name][request_index]
        assert state.tokens == expected.sequences[0]
        assert state.result().log_probs == expected.log_probs
        assert state.n_steps == expected.n_steps
        stats = state.cache_stats
        assert stats.lengths_per_step == expected.cache_stats.lengths_per_step
        assert stats.total_appended == expected.cache_stats.total_appended
        assert stats.total_evicted == expected.cache_stats.total_evicted
