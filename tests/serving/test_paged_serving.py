"""Serving tests for the paged engine: prefix sharing, memory-aware admission,
preemption and abort — all under the engine's bit-exactness invariant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import FullAttentionPolicy, WindowAttentionPolicy
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.kvcache.paged import PoolExhausted
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.request import FinishReason, RequestStatus
from repro.serving.scheduler import PagedScheduler

VOCAB = 96


def make_model(**overrides) -> DecoderLM:
    config = dict(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=512,
        positional="rope",
    )
    config.update(overrides)
    return DecoderLM(ModelConfig(**config), seed=0)


def window_factory():
    return WindowAttentionPolicy(CachePolicyConfig(kv_budget=48))


def shared_prompts(rng, n=4, prefix_len=80, suffix_len=12):
    prefix = rng.integers(0, VOCAB, size=prefix_len)
    return [
        np.concatenate([prefix, rng.integers(0, VOCAB, size=suffix_len)]).astype(
            np.int64
        )
        for _ in range(n)
    ]


def solo(model, factory, prompt, config):
    return Generator(model, factory()).generate(prompt, config, sampler=GreedySampler())


class TestPrefixSharing:
    @pytest.mark.parametrize("positional", ["rope", "alibi", "learned"])
    def test_shared_prefix_outputs_bit_identical(self, positional):
        model = make_model(positional=positional)
        rng = np.random.default_rng(1)
        prompts = shared_prompts(rng)
        config = GenerationConfig(max_new_tokens=8)
        engine = ContinuousBatchingEngine(
            model, policy_factory=window_factory, max_batch_size=4
        )
        states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
        engine.run()
        for state, prompt in zip(states, prompts):
            reference = solo(model, window_factory, prompt, config)
            assert state.tokens == reference.sequences[0]
            assert state.result().log_probs == reference.log_probs
            assert (
                state.cache_stats.lengths_per_step
                == reference.cache_stats.lengths_per_step
            )
        # The 80-token common prefix (5 pages) was mapped, not recomputed.
        assert engine.prefill_savings > 2.0
        assert engine.prefill_computed_tokens < engine.prefill_prompt_tokens

    def test_sequential_requests_share_after_retirement(self):
        """Registered prefixes outlive the request that seeded them."""
        model = make_model()
        rng = np.random.default_rng(2)
        prompts = shared_prompts(rng, n=2)
        config = GenerationConfig(max_new_tokens=4)
        engine = ContinuousBatchingEngine(
            model, policy_factory=window_factory, max_batch_size=1
        )
        first = engine.submit(prompts[0], config, sampler=GreedySampler())
        engine.run()
        second = engine.submit(prompts[1], config, sampler=GreedySampler())
        engine.run()
        assert engine.prefill_computed_tokens < engine.prefill_prompt_tokens
        for state, prompt in zip((first, second), prompts):
            assert state.tokens == solo(model, window_factory, prompt, config).sequences[0]

    def test_identical_prompts_map_same_pages(self):
        model = make_model()
        rng = np.random.default_rng(3)
        prompt = rng.integers(0, VOCAB, size=64).astype(np.int64)
        config = GenerationConfig(max_new_tokens=4)
        engine = ContinuousBatchingEngine(
            model, policy_factory=FullAttentionPolicy, max_batch_size=2
        )
        states = [engine.submit(prompt, config, sampler=GreedySampler()) for _ in range(2)]
        engine.step()
        usage = engine.pool_usage()
        assert usage["pages_shared"] > 0
        engine.run()
        assert states[0].tokens == states[1].tokens

    def test_score_policies_bypass_sharing(self):
        """Keyformer consumes prompt attention, so its requests must prefill
        fully even when a matching prefix is resident — and stay bit-exact."""
        model = make_model()
        rng = np.random.default_rng(4)
        prompts = shared_prompts(rng, n=2)
        config = GenerationConfig(max_new_tokens=6)

        def factory():
            return KeyformerPolicy(KeyformerConfig(kv_fraction=0.5))

        engine = ContinuousBatchingEngine(model, policy_factory=factory, max_batch_size=2)
        states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
        engine.run()
        assert engine.prefill_computed_tokens == engine.prefill_prompt_tokens
        for state, prompt in zip(states, prompts):
            assert state.tokens == solo(model, factory, prompt, config).sequences[0]

    def test_sharing_disabled_flag(self):
        model = make_model()
        rng = np.random.default_rng(5)
        prompts = shared_prompts(rng, n=2)
        config = GenerationConfig(max_new_tokens=4)
        engine = ContinuousBatchingEngine(
            model,
            policy_factory=window_factory,
            max_batch_size=2,
            enable_prefix_sharing=False,
        )
        for p in prompts:
            engine.submit(p, config, sampler=GreedySampler())
        engine.run()
        assert engine.prefill_savings == 1.0


class TestPreemption:
    def test_pool_pressure_preempts_and_stays_bit_exact(self):
        model = make_model()
        rng = np.random.default_rng(6)
        prompts = [rng.integers(0, VOCAB, size=n).astype(np.int64) for n in (60, 55, 70, 50)]
        config = GenerationConfig(max_new_tokens=24)
        engine = ContinuousBatchingEngine(
            model,
            policy_factory=FullAttentionPolicy,
            max_batch_size=4,
            max_pool_tokens=256,
            enable_prefix_sharing=False,
        )
        states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
        engine.run()
        assert engine.n_preemptions > 0
        for state, prompt in zip(states, prompts):
            reference = solo(model, FullAttentionPolicy, prompt, config)
            assert state.tokens == reference.sequences[0]
            assert state.result().log_probs == reference.log_probs

    def test_preemption_preserves_fcfs_completion_order(self):
        """Older requests are never the victim: with equal budgets they finish
        no later than the requests admitted after them."""
        model = make_model()
        rng = np.random.default_rng(7)
        prompts = [rng.integers(0, VOCAB, size=48).astype(np.int64) for _ in range(4)]
        config = GenerationConfig(max_new_tokens=40)
        engine = ContinuousBatchingEngine(
            model,
            policy_factory=FullAttentionPolicy,
            max_batch_size=4,
            max_pool_tokens=144,
            enable_prefix_sharing=False,
        )
        states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
        finished = engine.run()
        assert engine.n_preemptions > 0
        finish_order = [s.request_id for s in finished]
        assert finish_order == sorted(finish_order)
        for state, prompt in zip(states, prompts):
            assert state.tokens == solo(model, FullAttentionPolicy, prompt, config).sequences[0]

    def test_oversized_request_rejected_at_submit(self):
        """A request whose worst case can never fit the fixed pool would
        exhaust it mid-decode with nothing to preempt — reject it up front."""
        model = make_model()
        rng = np.random.default_rng(8)
        engine = ContinuousBatchingEngine(
            model,
            policy_factory=FullAttentionPolicy,
            max_batch_size=2,
            max_pool_tokens=64,
        )
        with pytest.raises(ValueError, match="fixed pool"):
            engine.submit(
                rng.integers(0, VOCAB, size=200).astype(np.int64),
                GenerationConfig(max_new_tokens=4),
            )

    def test_watermark_blocked_request_raises_instead_of_spinning(self):
        """Fits the pool in the worst case, but never clears the admission
        watermark: the engine must raise, not spin forever."""
        model = make_model(max_seq_len=1024)
        rng = np.random.default_rng(8)
        engine = ContinuousBatchingEngine(
            model,
            policy_factory=FullAttentionPolicy,
            max_batch_size=2,
            max_pool_tokens=640,  # 40 pages; watermark headroom = 4 pages
        )
        engine.submit(
            rng.integers(0, VOCAB, size=600).astype(np.int64),
            GenerationConfig(max_new_tokens=8),
        )
        with pytest.raises(PoolExhausted, match="cannot be admitted"):
            engine.run()


class TestAbort:
    def _engine_and_states(self, max_batch=2):
        model = make_model()
        rng = np.random.default_rng(9)
        prompts = [rng.integers(0, VOCAB, size=n).astype(np.int64) for n in (40, 35, 45, 30)]
        engine = ContinuousBatchingEngine(
            model, policy_factory=FullAttentionPolicy, max_batch_size=max_batch
        )
        config = GenerationConfig(max_new_tokens=12)
        states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
        return model, engine, states, prompts, config

    def test_abort_queued_request(self):
        _, engine, states, _, _ = self._engine_and_states()
        engine.step()  # admits the first two; 2 and 3 stay queued
        assert engine.abort(states[3].request_id)
        assert states[3].status is RequestStatus.FINISHED
        assert states[3].finish_reason is FinishReason.ABORTED
        assert states[3].tokens == []
        assert engine.n_queued == 1
        engine.run()
        assert all(s.finished for s in states)

    def test_abort_running_request_frees_pages(self):
        _, engine, states, _, _ = self._engine_and_states()
        engine.step()
        used_before = engine.pool_usage()["pages_used"]
        assert engine.abort(states[0].request_id)
        assert states[0].finish_reason is FinishReason.ABORTED
        assert engine.pool_usage()["pages_used"] < used_before
        engine.run()

    def test_abort_unknown_or_finished_returns_false(self):
        _, engine, states, _, _ = self._engine_and_states()
        engine.run()
        assert not engine.abort(states[0].request_id)
        assert not engine.abort(999)

    def test_abort_does_not_disturb_survivors(self):
        model, engine, states, prompts, config = self._engine_and_states()
        engine.step()
        engine.abort(states[0].request_id)
        engine.run()
        for idx in (1, 2, 3):
            reference = solo(model, FullAttentionPolicy, prompts[idx], config)
            assert states[idx].tokens == reference.sequences[0]

    def test_scheduler_cancel_removes_from_queue(self):
        scheduler = PagedScheduler(max_batch_size=2)
        _, engine, states, _, _ = self._engine_and_states()
        for state in states:
            scheduler.submit(state)
        assert scheduler.cancel(states[1].request_id) is states[1]
        assert scheduler.cancel(123) is None
        assert [s.request_id for s in scheduler.pending] == [0, 2, 3]


class TestPagedScheduler:
    def test_admits_against_free_pages_not_token_budget(self):
        """Window-policy requests only occupy their budget, so paged admission
        packs more concurrent requests than worst-case token accounting."""
        model = make_model()
        rng = np.random.default_rng(10)
        prompts = [rng.integers(0, VOCAB, size=64).astype(np.int64) for _ in range(3)]
        config = GenerationConfig(max_new_tokens=8)
        engine = ContinuousBatchingEngine(
            model,
            policy_factory=window_factory,
            max_batch_size=3,
            max_pool_tokens=320,
            enable_prefix_sharing=False,
        )
        states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
        engine.step()
        # Worst-case accounting (3 × 72 = 216 tokens = 15 pages + watermark)
        # would block the third request in a 20-page pool; memory-aware
        # admission runs all three because evicted prompt pages come back.
        assert engine.n_running == 3
        engine.run()
        for state, prompt in zip(states, prompts):
            assert state.tokens == solo(model, window_factory, prompt, config).sequences[0]

    def test_watermark_validation(self):
        with pytest.raises(ValueError, match="watermark"):
            PagedScheduler(max_batch_size=2, watermark=1.5)
