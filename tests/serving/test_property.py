"""Property test: arrival order and engine capacity never change any output.

Because batched execution is bit-exact per sequence, the scheduler can only
affect *when* a request runs — never *what* it generates.  Hypothesis drives
random submission orders and random engine budgets; every request must
reproduce its dedicated single-request output exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CachePolicyConfig
from repro.core.policies import H2OPolicy
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import BatchedGenerator

VOCAB = 96
PROMPT_LENGTHS = (37, 18, 29, 24)
MAX_NEW_TOKENS = 10

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)
_PROMPTS = [
    np.random.default_rng(13).integers(0, VOCAB, size=n).astype(np.int64)
    for n in PROMPT_LENGTHS
]
_CONFIG = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)


def _policy_factory():
    return H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5))


#: Dedicated single-request reference outputs, computed once.
_EXPECTED = [
    Generator(_MODEL, _policy_factory()).generate(
        prompt, _CONFIG, sampler=GreedySampler()
    )
    for prompt in _PROMPTS
]


@settings(max_examples=12, deadline=None)
@given(
    order=st.permutations(list(range(len(_PROMPTS)))),
    max_batch_size=st.integers(min_value=1, max_value=4),
    token_budget_slack=st.integers(min_value=0, max_value=60),
)
def test_arrival_order_never_changes_outputs(order, max_batch_size, token_budget_slack):
    max_request_tokens = max(len(p) for p in _PROMPTS) + MAX_NEW_TOKENS
    generator = BatchedGenerator(
        _MODEL,
        policy_factory=_policy_factory,
        max_batch_size=max_batch_size,
        max_total_tokens=max_request_tokens + token_budget_slack,
    )
    results = generator.generate_batch(
        [_PROMPTS[i] for i in order], _CONFIG, sampler=GreedySampler()
    )
    for position, request_index in enumerate(order):
        expected = _EXPECTED[request_index]
        got = results[position]
        assert got.sequences[0] == expected.sequences[0]
        assert got.log_probs[0] == expected.log_probs[0]
        assert got.n_steps == expected.n_steps
        assert (
            got.cache_stats.lengths_per_step == expected.cache_stats.lengths_per_step
        )
