"""Property test: int8-paged serving is bit-identical to solo int8 decoding.

The quantized pool's determinism contract (see `docs/quantization.md`) says
quantization is a pure function of the write history — never of physical
page ids, batch composition or preemption timing.  Hypothesis drives random
request subsets, submission orders, engine widths and pool sizes (fixed
pools small enough to preempt) with ``kv_dtype="int8"`` on both sides, and
every request must reproduce its dedicated single-request int8 output
exactly: tokens and log-probabilities, bit for bit.  Prefix sharing is
disabled here because shared-prefix prefill reads *dequantized* prefix pages
— the one documented tolerance-level path of int8 mode — which the
dedicated mechanics test below exercises instead.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CachePolicyConfig, KeyformerConfig
from repro.core.keyformer import KeyformerPolicy
from repro.core.policies import (
    FullAttentionPolicy,
    H2OPolicy,
    WindowAttentionPolicy,
)
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine

VOCAB = 96
MAX_NEW_TOKENS = 8
PROMPT_LENGTHS = (41, 18, 29, 37)

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)

_RNG = np.random.default_rng(29)
_PROMPTS = [
    _RNG.integers(0, VOCAB, size=n).astype(np.int64) for n in PROMPT_LENGTHS
]
_CONFIG = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)

_POLICIES = {
    "full": FullAttentionPolicy,
    "window": lambda: WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5)),
    "h2o": lambda: H2OPolicy(CachePolicyConfig(kv_fraction=0.5, recent_ratio=0.5)),
    "keyformer": lambda: KeyformerPolicy(KeyformerConfig(kv_fraction=0.5)),
}

#: Dedicated single-request int8 reference outputs, computed once per policy.
_EXPECTED = {
    name: [
        Generator(_MODEL, factory(), kv_dtype="int8").generate(
            p, _CONFIG, sampler=GreedySampler()
        )
        for p in _PROMPTS
    ]
    for name, factory in _POLICIES.items()
}


@pytest.mark.parametrize("policy_name", sorted(_POLICIES))
@settings(max_examples=6, deadline=None)
@given(
    order=st.permutations(list(range(len(_PROMPTS)))),
    max_batch_size=st.integers(min_value=1, max_value=4),
    pool_pages=st.one_of(st.none(), st.integers(min_value=8, max_value=14)),
    data=st.data(),
)
def test_int8_schedules_reproduce_solo_int8_outputs(
    policy_name, order, max_batch_size, pool_pages, data
):
    subset = order[: data.draw(st.integers(min_value=1, max_value=len(order)))]
    engine = ContinuousBatchingEngine(
        _MODEL,
        policy_factory=_POLICIES[policy_name],
        max_batch_size=max_batch_size,
        max_pool_tokens=None if pool_pages is None else pool_pages * 16,
        kv_dtype="int8",
        enable_prefix_sharing=False,
    )
    states = [
        engine.submit(_PROMPTS[i], _CONFIG, sampler=GreedySampler()) for i in subset
    ]
    engine.run()
    for state, request_index in zip(states, subset):
        expected = _EXPECTED[policy_name][request_index]
        assert state.tokens == expected.sequences[0]
        assert state.result().log_probs == expected.log_probs
        assert state.cache_stats.total_evicted == expected.cache_stats.total_evicted


def test_int8_prefix_sharing_mechanics():
    """Shared-prefix prefill on quantized pages: mechanics work end to end.

    Outputs are tolerance-level (suffix attention reads dequantized prefix
    KV), so this pins completion, page sharing and near-agreement with the
    unshared int8 run rather than bit-equality.
    """
    rng = np.random.default_rng(31)
    shared = rng.integers(0, VOCAB, size=32)
    prompts = [
        np.concatenate([shared, rng.integers(0, VOCAB, size=9 + i)]).astype(np.int64)
        for i in range(3)
    ]
    factory = _POLICIES["window"]
    results = {}
    for sharing in (False, True):
        engine = ContinuousBatchingEngine(
            _MODEL,
            policy_factory=factory,
            max_batch_size=3,
            kv_dtype="int8",
            enable_prefix_sharing=sharing,
        )
        states = [engine.submit(p, _CONFIG, sampler=GreedySampler()) for p in prompts]
        engine.run()
        results[sharing] = [state.tokens for state in states]
        if sharing:
            assert engine.prefill_savings > 1.0  # pages were actually mapped
    agreement = np.mean(
        [
            np.mean(np.asarray(a) == np.asarray(b))
            for a, b in zip(results[False], results[True])
        ]
    )
    assert agreement >= 0.75


def test_int8_speculative_serving_tracks_solo_int8():
    """Speculation on quantized pages: draft/verify/rollback works end to end.

    Per the documented contract, int8 speculation is *not* bit-identical to
    vanilla int8 decoding: a rejected draft token that widened a page's
    quantization range leaves the widened parameters behind after rollback
    (`truncate` stays pure bookkeeping).  Greedy tokens must still agree on
    this deterministic model, with log-probabilities within the half-step
    tolerance — and the run itself must be deterministic.
    """
    from repro.speculative import SpeculationConfig

    outputs = []
    for _ in range(2):
        engine = ContinuousBatchingEngine(
            _MODEL,
            max_batch_size=2,
            kv_dtype="int8",
            enable_prefix_sharing=False,
            speculation=SpeculationConfig(k=3, drafter="ngram"),
        )
        states = [engine.submit(p, _CONFIG) for p in _PROMPTS]
        engine.run()
        outputs.append([(st.tokens, st.result().log_probs) for st in states])
        for state, expected in zip(states, _EXPECTED["full"]):
            assert state.tokens == expected.sequences[0]
            assert state.result().log_probs == pytest.approx(
                expected.log_probs, abs=1e-3
            )
    assert outputs[0] == outputs[1]  # speculative int8 is still deterministic


def test_int8_byte_budget_admits_more_than_full_precision():
    """One byte budget: the int8 engine funds several times more pool tokens."""
    kwargs = dict(max_pool_bytes=512 * 1024)
    fp = ContinuousBatchingEngine(_MODEL, **kwargs)
    q = ContinuousBatchingEngine(_MODEL, kv_dtype="int8", **kwargs)
    assert q.max_pool_tokens >= 2 * fp.max_pool_tokens
    with pytest.raises(ValueError, match="either"):
        ContinuousBatchingEngine(_MODEL, max_pool_tokens=256, max_pool_bytes=1 << 20)
