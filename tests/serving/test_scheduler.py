"""Scheduler and engine-lifecycle tests: admission, joining, retirement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import FullAttentionPolicy, WindowAttentionPolicy
from repro.core.config import CachePolicyConfig
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import BatchedGenerator, ContinuousBatchingEngine
from repro.serving.request import FinishReason, Request, RequestState, RequestStatus
from repro.serving.scheduler import FCFSScheduler

VOCAB = 96


def make_model(**overrides) -> DecoderLM:
    config = dict(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    )
    config.update(overrides)
    return DecoderLM(ModelConfig(**config), seed=0)


def make_state(request_id: int, prompt_len: int, max_new: int = 8) -> RequestState:
    prompt = np.zeros((1, prompt_len), dtype=np.int64)
    request = Request(
        request_id=request_id, prompt_ids=prompt, max_new_tokens=max_new
    )
    return RequestState(request=request, sampler=GreedySampler(), policy=FullAttentionPolicy())


class TestFCFSScheduler:
    def test_admits_in_submission_order_up_to_batch_size(self):
        scheduler = FCFSScheduler(max_batch_size=2)
        states = [make_state(i, prompt_len=10) for i in range(4)]
        for state in states:
            scheduler.submit(state)
        admitted = scheduler.admit(n_running=0, tokens_in_flight=0)
        assert [s.request_id for s in admitted] == [0, 1]
        admitted = scheduler.admit(n_running=1, tokens_in_flight=18)
        assert [s.request_id for s in admitted] == [2]
        assert len(scheduler) == 1

    def test_token_budget_blocks_admission(self):
        scheduler = FCFSScheduler(max_batch_size=8, max_total_tokens=50)
        scheduler.submit(make_state(0, prompt_len=20, max_new=10))  # 30 tokens
        scheduler.submit(make_state(1, prompt_len=20, max_new=10))  # 30 tokens
        admitted = scheduler.admit(n_running=0, tokens_in_flight=0)
        assert [s.request_id for s in admitted] == [0]
        # Budget frees up once the first request retires.
        admitted = scheduler.admit(n_running=0, tokens_in_flight=0)
        assert [s.request_id for s in admitted] == [1]

    def test_head_of_line_blocking_is_strict_fcfs(self):
        scheduler = FCFSScheduler(max_batch_size=8, max_total_tokens=50)
        scheduler.submit(make_state(0, prompt_len=40, max_new=9))  # 49 tokens
        scheduler.submit(make_state(1, prompt_len=4, max_new=4))  # 8 tokens, fits
        admitted = scheduler.admit(n_running=1, tokens_in_flight=10)
        # The small request must NOT jump the blocked head of the queue.
        assert admitted == []

    def test_submit_rejects_request_that_can_never_fit(self):
        scheduler = FCFSScheduler(max_batch_size=2, max_total_tokens=16)
        with pytest.raises(ValueError, match="max_total_tokens"):
            scheduler.submit(make_state(0, prompt_len=20, max_new=10))

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            FCFSScheduler(max_batch_size=0)
        with pytest.raises(ValueError):
            FCFSScheduler(max_batch_size=1, max_total_tokens=0)


class TestEngineLifecycle:
    def _prompts(self, lengths=(48, 31, 40, 23)):
        rng = np.random.default_rng(7)
        return [rng.integers(0, VOCAB, size=n).astype(np.int64) for n in lengths]

    def test_joining_mid_stream_preserves_outputs(self):
        """With max_batch_size=2, requests 3 and 4 join as earlier ones retire
        — outputs must equal dedicated single-request runs regardless."""
        model = make_model()
        prompts = self._prompts()
        # Mixed decoding budgets force staggered retirement and joining.
        configs = [
            GenerationConfig(max_new_tokens=n) for n in (6, 14, 10, 8)
        ]
        sequential = [
            Generator(model, FullAttentionPolicy()).generate(
                p, c, sampler=GreedySampler()
            )
            for p, c in zip(prompts, configs)
        ]
        batched = BatchedGenerator(
            model, policy_factory=FullAttentionPolicy, max_batch_size=2
        ).generate_batch(prompts, configs, sampler=GreedySampler())
        for seq, bat in zip(sequential, batched):
            assert bat.sequences[0] == seq.sequences[0]
            assert bat.log_probs[0] == seq.log_probs[0]
            assert bat.n_steps == seq.n_steps

    def test_retire_on_max_tokens(self):
        model = make_model()
        engine = ContinuousBatchingEngine(
            model, policy_factory=FullAttentionPolicy, max_batch_size=4
        )
        state = engine.submit(self._prompts()[0], GenerationConfig(max_new_tokens=5))
        assert state.status is RequestStatus.QUEUED
        finished = engine.run()
        assert finished == [state]
        assert state.status is RequestStatus.FINISHED
        assert state.finish_reason is FinishReason.LENGTH
        assert len(state.tokens) == 5
        assert state.n_steps == 4  # max_new_tokens - 1 decode steps

    def test_retire_on_eos(self):
        model = make_model()
        prompt = self._prompts()[0]
        reference = Generator(model, FullAttentionPolicy()).generate(
            prompt, GenerationConfig(max_new_tokens=12), sampler=GreedySampler()
        )
        eos = reference.sequences[0][4]  # token generated at step 4
        config = GenerationConfig(max_new_tokens=12, eos_token_id=eos)
        sequential = Generator(model, FullAttentionPolicy()).generate(
            prompt, config, sampler=GreedySampler()
        )
        engine = ContinuousBatchingEngine(
            model, policy_factory=FullAttentionPolicy, max_batch_size=4
        )
        state = engine.submit(prompt, config, sampler=GreedySampler())
        engine.run()
        assert state.finish_reason is FinishReason.EOS
        assert state.tokens == sequential.sequences[0]
        assert state.tokens[-1] == eos
        assert state.n_steps == sequential.n_steps

    def test_eos_and_length_retire_independently_in_one_batch(self):
        model = make_model()
        prompts = self._prompts()
        reference = Generator(model, FullAttentionPolicy()).generate(
            prompts[0], GenerationConfig(max_new_tokens=12), sampler=GreedySampler()
        )
        eos = reference.sequences[0][3]
        config = GenerationConfig(max_new_tokens=12, eos_token_id=eos)
        engine = ContinuousBatchingEngine(
            model, policy_factory=FullAttentionPolicy, max_batch_size=4
        )
        states = [engine.submit(p, config, sampler=GreedySampler()) for p in prompts]
        engine.run()
        sequential = [
            Generator(model, FullAttentionPolicy()).generate(
                p, config, sampler=GreedySampler()
            )
            for p in prompts
        ]
        for state, seq in zip(states, sequential):
            assert state.tokens == seq.sequences[0]
        assert states[0].finish_reason is FinishReason.EOS

    def test_result_requires_finish(self):
        state = make_state(0, prompt_len=4)
        with pytest.raises(RuntimeError, match="has not finished"):
            state.result()

    def test_mixed_positional_modes_rejected(self):
        model = make_model()
        engine = ContinuousBatchingEngine(
            model,
            policy_factory=lambda: WindowAttentionPolicy(
                CachePolicyConfig(kv_fraction=0.5)
            ),
            max_batch_size=4,
        )
        engine.submit(self._prompts()[0], GenerationConfig(max_new_tokens=4))
        engine.submit(
            self._prompts()[1],
            GenerationConfig(max_new_tokens=4),
            policy=WindowAttentionPolicy(
                CachePolicyConfig(kv_fraction=0.5, positional_mode="new")
            ),
        )
        with pytest.raises(ValueError, match="positional mode"):
            engine.run()

    def test_engine_queue_and_running_counters(self):
        model = make_model()
        engine = ContinuousBatchingEngine(
            model, policy_factory=FullAttentionPolicy, max_batch_size=1
        )
        for prompt in self._prompts((16, 12)):
            engine.submit(prompt, GenerationConfig(max_new_tokens=3))
        assert engine.n_queued == 2 and engine.n_running == 0
        engine.step()
        assert engine.n_running == 1 and engine.n_queued == 1
        engine.run()
        assert engine.n_running == 0 and engine.n_queued == 0
        assert not engine.has_work
