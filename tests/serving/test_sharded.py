"""Sharded serving: router contracts, bit-exactness, death, abort, replay.

The sharded front-end's headline guarantee mirrors the solo engine's: for
every request the tokens, float64 log-probabilities and finish reason are
identical to what one solo engine produces, no matter how requests are
spread over replicas, which backend carries them, or whether a replica dies
mid-flight.  These tests pin that guarantee across all four policy
families, plus the routing layer's own contracts — process-stable digests,
deterministic rendezvous ownership, fallback on death, spill on overload —
and the N=1 reduction where the sharded replay report must be
byte-identical to the single-engine report.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.kvcache import chunk_digest
from repro.models.config import GenerationConfig, ModelConfig
from repro.serving import FinishReason
from repro.serving.sharded import (
    PrefixAffinityRouter,
    ReplicaDead,
    ReplicaSpec,
    ShardedEngine,
)
from repro.serving.workload import WorkloadConfig, generate_trace, replay_trace
from repro.perfmodel.serving import StepCostModel

VOCAB = 96
PAGE = 16

_MODEL_CONFIG = ModelConfig(
    vocab_size=VOCAB,
    d_model=32,
    n_layers=2,
    n_heads=4,
    d_ff=64,
    max_seq_len=256,
    positional="rope",
)

_RNG = np.random.default_rng(11)
#: Mixed prompts: two shared 2-page prefixes (3 requests each), one
#: sub-page prompt (no routable chunk), assorted singletons.
_PREFIX_A = _RNG.integers(0, VOCAB, size=2 * PAGE).astype(np.int64)
_PREFIX_B = _RNG.integers(0, VOCAB, size=2 * PAGE).astype(np.int64)
_PROMPTS = [
    np.concatenate([_PREFIX_A, _RNG.integers(0, VOCAB, size=n).astype(np.int64)])
    for n in (5, 9, 13)
]
_PROMPTS += [
    np.concatenate([_PREFIX_B, _RNG.integers(0, VOCAB, size=n).astype(np.int64)])
    for n in (4, 11, 7)
]
_PROMPTS += [
    _RNG.integers(0, VOCAB, size=7).astype(np.int64),  # sub-page: no chunk
    _RNG.integers(0, VOCAB, size=37).astype(np.int64),
    _RNG.integers(0, VOCAB, size=52).astype(np.int64),
]
_CONFIG = GenerationConfig(max_new_tokens=8)

_POLICIES = {
    "full": {},
    "window": {"kv_fraction": 0.5},
    "h2o": {"kv_fraction": 0.5, "recent_ratio": 0.5},
    "keyformer": {"kv_fraction": 0.5},
}


def _spec(policy="full", **overrides):
    kwargs = dict(
        model_config=_MODEL_CONFIG,
        model_seed=0,
        policy=policy,
        policy_kwargs=_POLICIES[policy],
        max_batch_size=4,
        page_size=PAGE,
    )
    kwargs.update(overrides)
    return ReplicaSpec(**kwargs)


def _solo_results(policy="full", prompts=_PROMPTS):
    """Reference outputs: every prompt through one solo batched engine."""
    engine = _spec(policy).build_engine()
    states = [engine.submit(p, _CONFIG) for p in prompts]
    while engine.has_work:
        engine.step()
    return states


def _assert_results_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert list(g.tokens) == list(w.tokens)
        assert g.total_logprob == w.total_logprob  # exact float64 equality
        assert g.finish_reason == w.finish_reason
        assert g.result().sequences == w.result().sequences
        assert g.result().log_probs == w.result().log_probs


# ----------------------------------------------------------------------
# digest stability
# ----------------------------------------------------------------------
def test_chunk_digest_stable_across_processes_and_hashseed():
    """The routing digest must not depend on the process or PYTHONHASHSEED."""
    tokens = list(range(PAGE))
    parent = chunk_digest(tokens)
    chained = chunk_digest(tokens[::-1], parent)
    script = (
        "from repro.kvcache import chunk_digest;"
        f"p = chunk_digest({tokens!r});"
        f"print(p.hex(), chunk_digest({tokens[::-1]!r}, p).hex())"
    )
    for hashseed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.split()
        assert out == [parent.hex(), chained.hex()]


def test_chunk_digest_is_chained_and_type_insensitive():
    tokens = _RNG.integers(0, VOCAB, size=PAGE)
    assert chunk_digest(tokens) == chunk_digest(list(int(t) for t in tokens))
    assert chunk_digest(tokens, chunk_digest(tokens)) != chunk_digest(tokens)


# ----------------------------------------------------------------------
# router contracts
# ----------------------------------------------------------------------
def test_router_deterministic_and_affine():
    router = PrefixAffinityRouter(4, page_size=PAGE)
    loads = [0, 0, 0, 0]
    first = router.route(_PROMPTS[0], loads)
    # Same leading chunk -> same replica, independent of suffix and loads.
    for p in _PROMPTS[1:3]:
        assert router.route(p, [5, 5, 5, 5]) == first
    fresh = PrefixAffinityRouter(4, page_size=PAGE)
    assert fresh.route(_PROMPTS[0], loads) == first
    assert router.n_affinity == 3


def test_router_spreads_distinct_prefixes():
    """Rendezvous hashing should not pile distinct keys onto one replica."""
    router = PrefixAffinityRouter(4, page_size=PAGE)
    rng = np.random.default_rng(3)
    owners = {
        router.route(rng.integers(0, VOCAB, size=PAGE), [0, 0, 0, 0])
        for _ in range(64)
    }
    assert owners == {0, 1, 2, 3}


def test_router_death_fallback_is_minimal():
    """Killing one replica moves only its keys; survivors keep theirs."""
    router = PrefixAffinityRouter(4, page_size=PAGE)
    rng = np.random.default_rng(5)
    prompts = [rng.integers(0, VOCAB, size=PAGE) for _ in range(48)]
    loads = [0, 0, 0, 0]
    before = [router.route(p, loads) for p in prompts]
    dead = before[0]
    alive = [i for i in range(4) if i != dead]
    after = [router.route(p, loads, alive=alive) for p in prompts]
    for b, a in zip(before, after):
        if b == dead:
            assert a != dead
        else:
            assert a == b


def test_router_short_and_empty_prompts_fall_back_to_least_loaded():
    router = PrefixAffinityRouter(3, page_size=PAGE)
    assert router.route(np.arange(PAGE - 1), [2, 0, 1]) == 1
    assert router.route([], [2, 0, 1]) == 1
    assert router.route([], [0, 0, 0]) == 0  # index tie-break
    assert router.n_no_prefix == 3
    assert router.n_affinity == 0


def test_router_spill_on_overload():
    router = PrefixAffinityRouter(2, page_size=PAGE, spill_load=2)
    prompt = _PROMPTS[0]
    target = router.route(prompt, [0, 0])
    other = 1 - target
    loads = [0, 0]
    loads[target] = 2  # at the spill threshold
    assert router.route(prompt, loads) == other
    assert router.n_spilled == 1
    # Below threshold affinity still wins even when the other is idle.
    loads[target] = 1
    assert router.route(prompt, loads) == target


def test_router_no_live_replicas_raises():
    router = PrefixAffinityRouter(2, page_size=PAGE)
    with pytest.raises(ReplicaDead):
        router.route(_PROMPTS[0], [0, 0], alive=[])


def test_router_validation():
    with pytest.raises(ValueError):
        PrefixAffinityRouter(0)
    with pytest.raises(ValueError):
        PrefixAffinityRouter(2, route_chunks=0)
    with pytest.raises(ValueError):
        PrefixAffinityRouter(2, spill_load=0)


# ----------------------------------------------------------------------
# bit-exactness vs the solo engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", list(_POLICIES))
def test_sharded_matches_solo_engine_all_policies(policy):
    """N=3 inline sharding reproduces the solo engine's outputs exactly."""
    want = _solo_results(policy)
    with ShardedEngine(_spec(policy), 3, backend="inline") as eng:
        handles = [eng.submit(p, _CONFIG) for p in _PROMPTS]
        eng.drain()
        _assert_results_equal(handles, want)
        stats = eng.stats()
    assert stats["n_replica_failures"] == 0
    assert sum(stats["router"]["per_replica"]) == len(_PROMPTS)
    assert all(r["alive"] for r in stats["replicas"])


def test_sharded_process_backend_matches_inline():
    """The multiprocessing transport changes nothing about the outputs."""
    prompts = _PROMPTS[:5]
    with ShardedEngine(_spec(), 2, backend="inline") as eng:
        want = [eng.submit(p, _CONFIG) for p in prompts]
        eng.drain()
        inline_routes = [h.replica for h in want]
    with ShardedEngine(_spec(), 2, backend="process") as eng:
        handles = [eng.submit(p, _CONFIG) for p in prompts]
        eng.drain()
        _assert_results_equal(handles, want)
        assert [h.replica for h in handles] == inline_routes


# ----------------------------------------------------------------------
# replica death
# ----------------------------------------------------------------------
def test_replica_death_reroutes_and_stays_bit_exact():
    want = _solo_results()
    with ShardedEngine(_spec(), 3, backend="inline") as eng:
        handles = [eng.submit(p, _CONFIG) for p in _PROMPTS]
        for _ in range(3):
            eng.step()
        victim = next(h.replica for h in handles if not h.finished)
        n_victims = sum(
            1 for h in handles if not h.finished and h.replica == victim
        )
        assert n_victims > 0
        eng.kill_replica(victim)
        eng.drain()
        _assert_results_equal(handles, want)
        # Victims restarted elsewhere, counted as retries, and every
        # finish reason survived the re-route.
        assert sum(h.retries for h in handles) >= n_victims
        assert all(h.replica != victim for h in handles if h.retries)
        stats = eng.stats()
    assert stats["n_replica_failures"] == 1
    assert stats["replicas"][victim]["alive"] is False
    assert {h.finish_reason for h in handles} <= {
        FinishReason.LENGTH,
        FinishReason.EOS,
    }


def test_all_replicas_dead_raises():
    with ShardedEngine(_spec(), 2, backend="inline") as eng:
        eng.submit(_PROMPTS[0], _CONFIG)
        eng.kill_replica(0)
        with pytest.raises(ReplicaDead):
            eng.kill_replica(1)


# ----------------------------------------------------------------------
# abort
# ----------------------------------------------------------------------
def test_abort_queued_and_in_flight():
    spec = _spec(max_batch_size=1)  # force a queue behind a long request
    long_cfg = GenerationConfig(max_new_tokens=32)
    with ShardedEngine(spec, 1, backend="inline") as eng:
        running = eng.submit(_PROMPTS[0], long_cfg)
        queued = eng.submit(_PROMPTS[1], long_cfg)
        for _ in range(4):
            eng.step()
        assert not running.finished and not queued.finished
        # Queued victim: never scheduled, aborts with no tokens.
        assert eng.abort(queued.request_id)
        assert queued.finished
        assert queued.finish_reason is FinishReason.ABORTED
        assert queued.tokens == []
        # In-flight victim: keeps the tokens it already produced.
        assert eng.abort(running.request_id)
        assert running.finish_reason is FinishReason.ABORTED
        assert len(running.tokens) > 0
        # Unknown / already-finished ids are a no-op.
        assert not eng.abort(running.request_id)
        assert not eng.abort(10_000)
        assert not eng.has_work


# ----------------------------------------------------------------------
# trace-level determinism and the N=1 reduction
# ----------------------------------------------------------------------
_TRACE_CONFIG = WorkloadConfig(
    n_requests=12,
    vocab_size=VOCAB,
    mean_interarrival=2.0,
    n_prefixes=2,
    prefix_share_prob=0.7,
    prefix_len_pages=1,
    suffix_len_range=(2, 8),
    prompt_len_range=(4, 24),
    output_len_choices=(4,),
    output_len_weights=(1.0,),
)


def test_routing_deterministic_given_trace_seed_n():
    trace = generate_trace(_TRACE_CONFIG, seed=9)
    assert trace == generate_trace(_TRACE_CONFIG, seed=9)

    def assignment():
        router = PrefixAffinityRouter(4, page_size=PAGE)
        return [
            router.route(np.asarray(e.prompt_ids), [0, 0, 0, 0])
            for e in trace.events
        ]

    assert assignment() == assignment()


def test_sharded_n1_replay_report_byte_identical_to_solo():
    """With one replica and zero overhead the front-end is transparent."""
    trace = generate_trace(_TRACE_CONFIG, seed=9)
    cost = StepCostModel()
    solo = replay_trace(_spec().build_engine(), trace, cost)
    with ShardedEngine(_spec(), 1, backend="inline") as eng:
        sharded = replay_trace(eng, trace, cost)
    assert json.dumps(sharded.report.to_dict(), sort_keys=True) == json.dumps(
        solo.report.to_dict(), sort_keys=True
    )
    assert sharded.makespan == solo.makespan
    assert sharded.engine_stats == solo.engine_stats
