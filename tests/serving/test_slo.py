"""SLO tiers: priority scheduling, preemption bit-exactness, report math.

Priorities may only ever change *when* a request runs, never *what* it
generates — the preemption tests replay every outcome against dedicated
solo runs.  The latency-report tests pin the metric definitions (TTFT /
TPOT / E2E / goodput) and the determinism contract (byte-identical JSON
for the same records).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig, ModelConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.scheduler import PagedScheduler
from repro.serving.slo import (
    TIER_BATCH,
    TIER_INTERACTIVE,
    TIER_STANDARD,
    LatencyRecord,
    LatencyReport,
    PriorityScheduler,
    SLOSpec,
    SLOTarget,
    percentile,
)

VOCAB = 96
_CONFIG = GenerationConfig(max_new_tokens=12)

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)

_RNG = np.random.default_rng(7)
_PROMPTS = [_RNG.integers(0, VOCAB, size=n).astype(np.int64) for n in (12, 14, 10)]

_EXPECTED = [
    Generator(_MODEL).generate(p, _CONFIG, sampler=GreedySampler()) for p in _PROMPTS
]


# ----------------------------------------------------------------------
# PriorityScheduler ordering
# ----------------------------------------------------------------------
def _state(request_id: int, priority: int):
    from repro.core.policies import FullAttentionPolicy
    from repro.serving.request import Request, RequestState

    request = Request(
        request_id=request_id,
        prompt_ids=np.zeros((1, 4), dtype=np.int64),
        priority=priority,
    )
    return RequestState(request=request, sampler=GreedySampler(), policy=FullAttentionPolicy())


def test_priority_queue_ordering():
    """Queue sorts by (-priority, request_id): tiers first, FCFS within."""
    sched = PriorityScheduler(max_batch_size=8)
    for rid, prio in ((0, TIER_BATCH), (1, TIER_INTERACTIVE), (2, TIER_STANDARD), (3, TIER_INTERACTIVE)):
        sched.submit(_state(rid, prio))
    assert [s.request_id for s in sched.pending] == [1, 3, 2, 0]


def test_priority_requeue_slots_by_tier():
    """A preempted low-tier request re-enters behind queued higher tiers."""
    sched = PriorityScheduler(max_batch_size=8)
    sched.submit(_state(5, TIER_INTERACTIVE))
    victim = _state(0, TIER_BATCH)
    sched.requeue(victim)
    sched.submit(_state(6, TIER_STANDARD))
    assert [s.request_id for s in sched.pending] == [5, 6, 0]


def test_uniform_priority_is_fcfs():
    """Single-tier workloads order exactly like the paged scheduler
    (engine-assigned ids are monotonic at submission, so arrival order is
    id order; a requeued older victim slots in ahead in both)."""
    sched = PriorityScheduler(max_batch_size=8)
    paged = PagedScheduler(max_batch_size=8)
    for rid in (1, 2, 3, 4):
        sched.submit(_state(rid, TIER_STANDARD))
        paged.submit(_state(rid, TIER_STANDARD))
    sched.requeue(_state(0, TIER_STANDARD))
    paged.requeue(_state(0, TIER_STANDARD))
    assert [s.request_id for s in sched.pending] == [
        s.request_id for s in paged.pending
    ]


# ----------------------------------------------------------------------
# priority preemption through the engine, bit-exact
# ----------------------------------------------------------------------
def test_priority_preemption_bit_exact():
    """A late interactive request preempts a batch-tier one; everyone's
    output still matches its solo run bit for bit."""
    sched = PriorityScheduler(max_batch_size=2)
    engine = ContinuousBatchingEngine(_MODEL, scheduler=sched)
    assert engine.scheduler is sched  # an empty scheduler must not be replaced
    low0 = engine.submit(_PROMPTS[0], _CONFIG, priority=TIER_BATCH)
    low1 = engine.submit(_PROMPTS[1], _CONFIG, priority=TIER_BATCH)
    engine.step()
    engine.step()
    assert low0.tokens and low1.tokens  # both decoding
    high = engine.submit(_PROMPTS[2], _CONFIG, priority=TIER_INTERACTIVE)
    engine.step()
    assert engine.n_preemptions >= 1, "blocked high tier should preempt"
    running = [s.request_id for s in engine._states]
    assert high.request_id in running
    finished = engine.run()
    order = [s.request_id for s in finished]
    # The high-priority arrival must not finish last.
    assert order.index(high.request_id) < len(order) - 1
    for state, expected in zip((low0, low1, high), _EXPECTED):
        assert state.result().sequences[0] == expected.sequences[0]
        assert state.result().log_probs[0] == expected.log_probs[0]
    preempted = [s for s in (low0, low1) if s.preemptions > 0]
    assert preempted, "a batch-tier request should have restarted"
    for state in finished:
        assert state.first_token_step is not None
        assert state.finished_step is not None
        assert state.finished_step >= state.first_token_step


def test_no_preemption_among_equal_priorities():
    """Priority preemption never fires when the head does not outrank."""
    sched = PriorityScheduler(max_batch_size=2)
    engine = ContinuousBatchingEngine(_MODEL, scheduler=sched)
    engine.submit(_PROMPTS[0], _CONFIG, priority=TIER_STANDARD)
    engine.submit(_PROMPTS[1], _CONFIG, priority=TIER_STANDARD)
    engine.step()
    engine.submit(_PROMPTS[2], _CONFIG, priority=TIER_STANDARD)
    engine.run()
    assert engine.n_preemptions == 0


def test_paged_scheduler_ignores_priority():
    """Without a PriorityScheduler, a high tier waits its FCFS turn."""
    engine = ContinuousBatchingEngine(
        _MODEL, scheduler=PagedScheduler(max_batch_size=2)
    )
    engine.submit(_PROMPTS[0], _CONFIG, priority=TIER_BATCH)
    engine.submit(_PROMPTS[1], _CONFIG, priority=TIER_BATCH)
    engine.step()
    engine.submit(_PROMPTS[2], _CONFIG, priority=TIER_INTERACTIVE)
    engine.run()
    assert engine.n_preemptions == 0


# ----------------------------------------------------------------------
# SLO targets and latency records
# ----------------------------------------------------------------------
def _record(**overrides):
    defaults = dict(
        request_id=0,
        priority=TIER_STANDARD,
        prompt_len=16,
        n_tokens=5,
        finish_reason="eos",
        submit_time=10.0,
        first_token_time=14.0,
        finish_time=22.0,
    )
    defaults.update(overrides)
    return LatencyRecord(**defaults)


def test_latency_record_metrics():
    record = _record()
    assert record.ttft == 4.0
    assert record.e2e == 12.0
    assert record.tpot == pytest.approx((22.0 - 14.0) / 4)
    assert record.completed


def test_latency_record_edge_cases():
    assert _record(n_tokens=1).tpot is None
    shed = _record(finish_reason="shed", first_token_time=None, finish_time=11.0)
    assert not shed.completed
    assert shed.ttft is None
    assert shed.e2e == 1.0


def test_slo_target_and_spec():
    target = SLOTarget(ttft=5.0, e2e=15.0)
    assert target.met_by(_record())
    assert not target.met_by(_record(first_token_time=16.0))  # ttft 6 > 5
    assert not target.met_by(_record(finish_reason="error"))
    spec = SLOSpec.three_tier(ttft=200.0, e2e=2000.0)
    assert spec.target_for(TIER_INTERACTIVE).ttft == 100.0
    assert spec.target_for(TIER_BATCH).ttft == 800.0
    assert spec.target_for(99).ttft == 200.0  # default for unknown tiers


def test_percentile_matches_numpy():
    values = [3.0, 1.0, 4.0, 1.5, 9.0]
    assert percentile(values, 50) == float(np.percentile(values, 50))


def test_report_goodput_and_determinism():
    records = [
        _record(request_id=0),
        _record(request_id=1, first_token_time=16.0),  # ttft 6: misses 5.0 target
        _record(request_id=2, finish_reason="timeout"),
    ]
    spec = SLOSpec(default=SLOTarget(ttft=5.0, e2e=50.0))
    report = LatencyReport.from_records(records, makespan=30.0, slo=spec)
    assert report.goodput() == pytest.approx(1 / 3)
    no_slo = LatencyReport.from_records(records, makespan=30.0)
    assert no_slo.goodput() == pytest.approx(2 / 3)  # completions only
    d = report.to_dict()
    assert d["n_requests"] == 3
    assert d["n_completed"] == 2
    assert d["finish_reasons"] == {"eos": 2, "timeout": 1}
    assert d["throughput"]["total_tokens"] == 10
    assert str(TIER_STANDARD) in d["per_tier"]
    assert report.to_json() == LatencyReport.from_records(
        list(records), makespan=30.0, slo=spec
    ).to_json()


def test_report_empty():
    report = LatencyReport.from_records([], makespan=0.0)
    assert report.goodput() == 0.0
    d = report.to_dict()
    assert d["n_requests"] == 0
    assert d["ttft"]["n"] == 0
