"""Engine speculation mode: bit-exact outputs under batching, pressure, FCFS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CachePolicyConfig
from repro.core.policies import WindowAttentionPolicy
from repro.models.config import GenerationConfig
from repro.models.transformer import DecoderLM
from repro.serving.engine import ContinuousBatchingEngine
from repro.speculative import SpeculationConfig
from tests.conftest import tiny_config

MAX_NEW = 12


def _prompts(n=5, base=24, vocab=64):
    rng = np.random.default_rng(3)
    return [rng.integers(0, vocab, size=base + 6 * i).astype(np.int64) for i in range(n)]


def _run(engine, prompts, config):
    states = [engine.submit(prompt, config) for prompt in prompts]
    engine.run()
    return states


def _outputs(states):
    return [(list(s.tokens), s.total_logprob, s.finish_reason) for s in states]


@pytest.fixture
def model(positional):
    return DecoderLM(tiny_config(positional, max_seq_len=512), seed=0)


@pytest.fixture
def reference(model):
    config = GenerationConfig(max_new_tokens=MAX_NEW)
    states = _run(ContinuousBatchingEngine(model, max_batch_size=3), _prompts(), config)
    return _outputs(states)


SPECS = {
    "window": SpeculationConfig(k=4, drafter="window", kv_fraction=0.5),
    "ngram": SpeculationConfig(k=3, drafter="ngram"),
}


class TestSpeculativeServingEquivalence:
    @pytest.mark.parametrize("drafter", sorted(SPECS))
    def test_matches_vanilla_engine(self, model, reference, drafter):
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        engine = ContinuousBatchingEngine(
            model, max_batch_size=3, speculation=SPECS[drafter]
        )
        states = _run(engine, _prompts(), config)
        assert _outputs(states) == reference
        agg = engine.speculation_stats
        # Each request's first token comes from its prefill, not a round.
        assert agg.committed == sum(len(tokens) - 1 for tokens, _, _ in reference)

    @pytest.mark.parametrize("drafter", sorted(SPECS))
    def test_fixed_pool_preemption_preserves_outputs(self, model, reference, drafter):
        """A pool tight enough to force preemption changes when requests
        finish, never what they emit."""
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        engine = ContinuousBatchingEngine(
            model,
            max_batch_size=3,
            speculation=SPECS[drafter],
            max_pool_tokens=192,
            page_size=8,
        )
        states = _run(engine, _prompts(), config)
        assert _outputs(states) == reference

    def test_speculation_composes_with_prefix_sharing(self, model):
        prefix = np.random.default_rng(9).integers(0, 64, size=64).astype(np.int64)
        prompts = [
            np.concatenate([prefix, np.random.default_rng(i).integers(0, 64, size=8)])
            for i in range(3)
        ]
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        vanilla = _outputs(
            _run(ContinuousBatchingEngine(model, max_batch_size=3), prompts, config)
        )
        engine = ContinuousBatchingEngine(
            model, max_batch_size=3, speculation=SPECS["window"]
        )
        states = _run(engine, prompts, config)
        assert _outputs(states) == vanilla
        assert engine.prefill_savings > 1.0


class TestSpeculativeServingLifecycle:
    def test_eos_retires_early(self, model):
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        probe = _run(
            ContinuousBatchingEngine(model, max_batch_size=2), _prompts(2), config
        )
        eos = probe[0].tokens[4]
        config_eos = GenerationConfig(max_new_tokens=MAX_NEW, eos_token_id=eos)
        vanilla = _outputs(
            _run(
                ContinuousBatchingEngine(model, max_batch_size=2),
                _prompts(2),
                config_eos,
            )
        )
        spec = _outputs(
            _run(
                ContinuousBatchingEngine(
                    model, max_batch_size=2, speculation=SPECS["window"]
                ),
                _prompts(2),
                config_eos,
            )
        )
        assert spec == vanilla

    def test_abort_in_speculation_mode(self, model):
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, speculation=SPECS["window"]
        )
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        states = [engine.submit(prompt, config) for prompt in _prompts(3)]
        engine.step()
        assert engine.abort(states[2].request_id)  # still queued
        engine.step()
        assert engine.abort(states[0].request_id)  # running
        engine.run()
        assert states[0].finish_reason.value == "aborted"
        assert states[2].finish_reason.value == "aborted"
        assert states[1].finish_reason is not None
        # Aborted rows' drafters were torn down with them.
        assert not engine._spec

    def test_accepted_lone_request_always_completes(self, model):
        """submit() accounts for the self-drafter's resident pages: any lone
        request it accepts into a fixed pool must run to completion instead
        of deadlocking on PoolExhausted with nothing to preempt."""
        prompt = _prompts(1)[0]
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        accepted = 0
        for pool_tokens in range(40, 137, 8):
            engine = ContinuousBatchingEngine(
                model,
                max_batch_size=1,
                speculation=SPECS["window"],
                max_pool_tokens=pool_tokens,
                page_size=8,
            )
            try:
                state = engine.submit(prompt, config)
            except ValueError:
                continue  # rejected up front — the acceptable outcome
            engine.run()
            assert len(state.tokens) == MAX_NEW
            accepted += 1
        assert accepted > 0  # the sweep must exercise the accepting side

    def test_ngram_history_tracks_every_committed_token(self, model):
        """The first (prefill-sampled) token must enter the lookup history —
        a hole at the prompt/generation seam silently degrades acceptance."""
        engine = ContinuousBatchingEngine(
            model, max_batch_size=1, speculation=SPECS["ngram"]
        )
        state = engine.submit(_prompts(1)[0], GenerationConfig(max_new_tokens=MAX_NEW))
        engine.step()  # prefill + first round; request still running
        drafter, _ = engine._spec[state.request_id]
        prompt_len = state.request.prompt_len
        assert drafter._history[prompt_len:] == state.tokens
        engine.run()

    def test_result_carries_speculation_summary(self, model):
        engine = ContinuousBatchingEngine(
            model, max_batch_size=2, speculation=SPECS["window"]
        )
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        state = engine.submit(_prompts(1)[0], config)
        engine.run()
        result = state.result()
        assert result.speculation["committed"] == MAX_NEW - 1
        assert result.speculation["rounds"] >= 1


class TestSpeculativeServingValidation:
    def test_rejects_stochastic_sampling(self, model):
        engine = ContinuousBatchingEngine(model, speculation=SPECS["window"])
        with pytest.raises(ValueError, match="greedy"):
            engine.submit(
                _prompts(1)[0], GenerationConfig(max_new_tokens=4, temperature=0.7, top_k=5)
            )

    def test_temperature_zero_counts_as_greedy(self, model):
        engine = ContinuousBatchingEngine(model, speculation=SPECS["window"])
        state = engine.submit(
            _prompts(1)[0], GenerationConfig(max_new_tokens=4, temperature=0.0)
        )
        engine.run()
        assert len(state.tokens) == 4

    def test_rejects_sparse_target_policy(self, model):
        engine = ContinuousBatchingEngine(
            model,
            policy_factory=lambda: WindowAttentionPolicy(CachePolicyConfig(kv_budget=8)),
            speculation=SPECS["window"],
        )
        with pytest.raises(ValueError, match="full-attention"):
            engine.submit(_prompts(1)[0], GenerationConfig(max_new_tokens=4))
