"""Workload traces: generation determinism, JSON round-trip, replay property.

The load harness's headline guarantee is end-to-end determinism: the same
``(config, seed)`` pair always yields the same trace, and replaying a trace
twice through fresh engines yields identical per-request outputs and a
byte-identical percentile report.  Hypothesis drives the property over
seeds, arrival processes and scheduler shapes; the remaining tests pin the
distributional structure of generated traces (sorted arrivals, page-aligned
shared prefixes, Zipf skew, tier mixture) and the virtual-time bookkeeping
of :func:`repro.serving.workload.replay_trace`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.config import ModelConfig
from repro.models.transformer import DecoderLM
from repro.perfmodel.serving import StepCostModel
from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.slo import SLOSpec, PriorityScheduler
from repro.serving.workload import (
    Trace,
    TraceEvent,
    WorkloadConfig,
    generate_trace,
    replay_trace,
)

_MODEL = DecoderLM(
    ModelConfig(
        vocab_size=96,
        d_model=32,
        n_layers=2,
        n_heads=4,
        d_ff=64,
        max_seq_len=256,
        positional="rope",
    ),
    seed=0,
)

#: Small geometry keeping every hypothesis example fast: short prompts and
#: outputs, prompt lengths bounded well under the model's max_seq_len.
_SMALL = dict(
    n_requests=6,
    vocab_size=96,
    mean_interarrival=4.0,
    prefix_len_pages=1,
    suffix_len_range=(2, 8),
    prompt_len_range=(4, 24),
    output_len_choices=(2, 4),
    output_len_weights=(0.5, 0.5),
    tier_weights={0: 0.4, 2: 0.6},
)


# ----------------------------------------------------------------------
# generation determinism and structure
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=2**31), arrival=st.sampled_from(["poisson", "bursty"]))
@settings(max_examples=10, deadline=None)
def test_trace_generation_deterministic(seed, arrival):
    config = WorkloadConfig(arrival=arrival, **_SMALL)
    assert generate_trace(config, seed) == generate_trace(config, seed)


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=10, deadline=None)
def test_trace_json_round_trip_exact(seed):
    trace = generate_trace(WorkloadConfig(arrival="bursty", **_SMALL), seed)
    assert Trace.from_json(trace.to_json()) == trace
    assert Trace.from_json(trace.to_json(indent=2)) == trace


def test_trace_structure():
    config = WorkloadConfig(n_requests=200, arrival="poisson", zipf_alpha=1.3)
    trace = generate_trace(config, seed=1)
    assert len(trace) == 200
    times = [e.arrival_time for e in trace.events]
    assert times == sorted(times)
    assert all(t > 0 for t in times)
    shared = [e for e in trace.events if e.prefix_id is not None]
    unique = [e for e in trace.events if e.prefix_id is None]
    assert shared and unique
    for e in shared:
        assert 0 <= e.prefix_id < config.n_prefixes
        lo, hi = config.suffix_len_range
        assert config.prefix_len + lo <= len(e.prompt_ids) <= config.prefix_len + hi
    for e in unique:
        lo, hi = config.prompt_len_range
        assert lo <= len(e.prompt_ids) <= hi
    for e in trace.events:
        assert e.max_new_tokens in config.output_len_choices
        assert e.priority in config.tier_weights
        assert all(0 <= t < config.vocab_size for t in e.prompt_ids)


def test_shared_prefixes_are_shared_tokens():
    """Events with the same prefix_id carry identical leading tokens —
    page-aligned, so the prefix registry can dedup their prefill."""
    config = WorkloadConfig(n_requests=60, prefix_share_prob=1.0)
    trace = generate_trace(config, seed=2)
    by_prefix: dict[int, tuple[int, ...]] = {}
    for e in trace.events:
        head = e.prompt_ids[: config.prefix_len]
        assert by_prefix.setdefault(e.prefix_id, head) == head
    assert config.prefix_len % config.page_size == 0


def test_zipf_skew():
    """Lower ranks are drawn more often (monotone in expectation; a pinned
    seed makes the assertion exact)."""
    config = WorkloadConfig(
        n_requests=400, prefix_share_prob=1.0, n_prefixes=6, zipf_alpha=1.5
    )
    trace = generate_trace(config, seed=3)
    counts = np.bincount(
        [e.prefix_id for e in trace.events], minlength=config.n_prefixes
    )
    assert counts[0] == counts.max()
    assert counts[0] > 2 * counts[-1]


def test_bursty_differs_from_poisson():
    common = dict(_SMALL, n_requests=50)
    poisson = generate_trace(WorkloadConfig(arrival="poisson", **{k: v for k, v in common.items()}), seed=4)
    bursty = generate_trace(WorkloadConfig(arrival="bursty", **{k: v for k, v in common.items()}), seed=4)
    assert [e.arrival_time for e in poisson.events] != [
        e.arrival_time for e in bursty.events
    ]


def test_workload_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(arrival="uniform")
    with pytest.raises(ValueError):
        WorkloadConfig(n_requests=0)
    with pytest.raises(ValueError):
        WorkloadConfig(burst_factor=0.5)
    with pytest.raises(ValueError):
        WorkloadConfig(output_len_choices=(4, 8), output_len_weights=(1.0,))
    with pytest.raises(ValueError):
        WorkloadConfig(tier_weights={})


def test_config_round_trip():
    config = WorkloadConfig(arrival="bursty", tier_weights={0: 0.5, 2: 0.5})
    assert WorkloadConfig.from_dict(config.to_dict()) == config


# ----------------------------------------------------------------------
# replay determinism (the harness's headline property)
# ----------------------------------------------------------------------
def _replay(trace, chunk_tokens=8, max_batch_size=2):
    scheduler = PriorityScheduler(
        max_batch_size=max_batch_size, prefill_chunk_tokens=chunk_tokens
    )
    engine = ContinuousBatchingEngine(_MODEL, scheduler=scheduler)
    result = replay_trace(
        engine, trace, StepCostModel(), slo=SLOSpec.three_tier(ttft=50.0, e2e=500.0)
    )
    tokens = {s.request_id: list(s.tokens) for s in engine._finished}
    return result, tokens


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    arrival=st.sampled_from(["poisson", "bursty"]),
    max_batch_size=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=6, deadline=None)
def test_replay_determinism_property(seed, arrival, max_batch_size):
    """Replaying one trace twice: identical tokens, byte-identical report."""
    trace = generate_trace(WorkloadConfig(arrival=arrival, **_SMALL), seed)
    first, tokens_a = _replay(trace, max_batch_size=max_batch_size)
    second, tokens_b = _replay(trace, max_batch_size=max_batch_size)
    assert tokens_a == tokens_b
    assert first.report.to_json() == second.report.to_json()
    assert first.engine_stats == second.engine_stats


def test_replay_bookkeeping():
    trace = generate_trace(WorkloadConfig(**_SMALL), seed=11)
    result, _ = _replay(trace)
    assert len(result.records) == len(trace)
    by_id = {r.request_id: r for r in result.records}
    arrivals = sorted(e.arrival_time for e in trace.events)
    assert sorted(r.submit_time for r in result.records) == pytest.approx(arrivals)
    assert result.makespan >= max(arrivals)
    for record in result.records:
        if record.completed:
            assert record.ttft is not None and record.ttft > 0
            assert record.e2e is not None and record.e2e >= record.ttft
    assert result.engine_stats["steps"] > 0
    assert by_id  # every record carries a unique id


def test_replay_handmade_trace():
    """replay_trace works on hand-built traces, not just generated ones."""
    rng = np.random.default_rng(0)
    events = tuple(
        TraceEvent(
            arrival_time=float(i + 1),
            prompt_ids=tuple(int(x) for x in rng.integers(0, 96, size=6)),
            max_new_tokens=3,
            priority=i % 2,
        )
        for i in range(4)
    )
    result, tokens = _replay(Trace(events=events, seed=0))
    assert result.report.to_dict()["n_completed"] == 4
    assert all(len(t) == 3 for t in tokens.values())
