"""Unit tests for the drafters: n-gram lookup and snapshot/rollback semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CachePolicyConfig
from repro.core.policies import WindowAttentionPolicy
from repro.generation.generator import Generator
from repro.models.transformer import DecoderLM
from repro.speculative import NgramDrafter, PolicyDrafter, SpeculationConfig
from tests.conftest import tiny_config


class TestSpeculationConfig:
    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            SpeculationConfig(k=0)

    def test_rejects_unknown_drafter(self):
        with pytest.raises(ValueError):
            SpeculationConfig(drafter="oracle")

    def test_policy_drafter_requires_factory(self):
        with pytest.raises(ValueError):
            SpeculationConfig(drafter="policy")

    def test_rejects_bad_ngram_bounds(self):
        with pytest.raises(ValueError):
            SpeculationConfig(ngram_min=2, ngram_max=1)


class TestNgramDrafter:
    def test_periodic_history_drafts_full_block(self):
        drafter = NgramDrafter(np.array([1, 2, 3, 1, 2, 3, 1, 2]), SpeculationConfig())
        assert drafter.draft(2, 5) == [3, 1, 2, 3, 1]

    def test_period_one_history(self):
        # The latest match sits flush against the end of history — the
        # rolling lookup must keep drafting instead of stopping at one token.
        drafter = NgramDrafter(np.full(16, 7), SpeculationConfig())
        assert drafter.draft(7, 4) == [7, 7, 7, 7]

    def test_no_recurring_ngram_drafts_nothing(self):
        drafter = NgramDrafter(np.arange(10), SpeculationConfig())
        assert drafter.draft(9, 4) == []

    def test_draft_stops_at_eos(self):
        drafter = NgramDrafter(np.array([1, 2, 9, 5, 1, 2]), SpeculationConfig())
        assert drafter.draft(2, 4, eos_token_id=9) == [9]

    def test_note_committed_extends_history(self):
        drafter = NgramDrafter(np.array([4, 5]), SpeculationConfig())
        drafter.note_committed([6, 4, 5])
        assert drafter.draft(5, 2) == [6, 4]

    def test_prefers_longest_matching_ngram(self):
        # Suffix [1, 2]: the 2-gram match (-> 8) must beat the 1-gram
        # match of the bare 2 (-> 9).
        history = np.array([1, 2, 8, 3, 2, 9, 1, 2])
        drafter = NgramDrafter(history, SpeculationConfig(ngram_max=3, ngram_min=1))
        assert drafter.draft(2, 1) == [8]


def _seeded_drafter(prompt_len: int = 24, budget: int = 8):
    model = DecoderLM(tiny_config("rope"), seed=0)
    prompt = np.random.default_rng(5).integers(0, 64, size=(1, prompt_len))
    generator = Generator(model, WindowAttentionPolicy(CachePolicyConfig(kv_budget=budget)))
    generator._prompt_forward(prompt, 16)  # warm the rope table
    policy = WindowAttentionPolicy(CachePolicyConfig(kv_budget=budget))
    drafter = PolicyDrafter.seed_from_prompt(model, policy, prompt, 16)
    return model, drafter


class TestPolicyDrafterRollback:
    def _state_fingerprint(self, drafter: PolicyDrafter):
        mgr = drafter.manager
        return (
            mgr.current_position,
            mgr.generation_step,
            [cache.keys.copy() for cache in mgr.caches],
            [cache.positions.copy() for cache in mgr.caches],
        )

    def _assert_same_state(self, a, b):
        assert a[0] == b[0] and a[1] == b[1]
        for x, y in zip(a[2], b[2]):
            np.testing.assert_array_equal(x, y)
        for x, y in zip(a[3], b[3]):
            np.testing.assert_array_equal(x, y)

    def test_rejected_drafts_roll_back(self):
        _, drafter = _seeded_drafter()
        draft = drafter.draft(3, 4)
        assert len(draft) == 4
        # Accept one: the drafter must rewind to "consumed [3, draft[0]]" —
        # the same state a fresh drafter reaches by consuming those directly.
        drafter.accept(3, draft, 1)
        reference = _seeded_drafter()[1]
        reference._consume(3)
        reference._consume(draft[0])
        self._assert_same_state(
            self._state_fingerprint(drafter), self._state_fingerprint(reference)
        )

    def test_full_acceptance_catches_up_next_round(self):
        _, drafter = _seeded_drafter()
        draft = drafter.draft(10, 3)
        drafter.accept(10, draft, len(draft))
        # Catch-up token is the final draft whose KV was never computed.
        assert drafter._catchup == [draft[-1]]
        reference = _seeded_drafter()[1]
        for token in [10] + draft:
            reference._consume(token)
        drafter.draft(99, 0)  # triggers catch-up only
        self._assert_same_state(
            self._state_fingerprint(drafter), self._state_fingerprint(reference)
        )

    def test_zero_draft_catches_up_last_token(self):
        _, drafter = _seeded_drafter()
        assert drafter.draft(6, 0) == []
        drafter.accept(6, [], 0)
        assert drafter._catchup == [6]

    def test_abort_round_restores_round_start(self):
        _, drafter = _seeded_drafter()
        drafter.draft(3, 2)
        drafter.accept(3, [1, 2], 2)  # leaves a pending catch-up token
        before = self._state_fingerprint(drafter)
        catchup = list(drafter._catchup)
        drafter.draft(4, 3)
        drafter.abort_round()
        self._assert_same_state(self._state_fingerprint(drafter), before)
        assert drafter._catchup == catchup

    def test_release_returns_all_pages(self):
        _, drafter = _seeded_drafter()
        draft = drafter.draft(3, 3)
        drafter.accept(3, draft, 1)  # exercises a snapshot restore first
        pool = drafter.manager.caches[0].pool
        drafter.release()
        assert pool.used_pages == 0
