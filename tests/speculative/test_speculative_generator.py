"""SpeculativeGenerator equivalence, edge cases and paged-store accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CachePolicyConfig
from repro.core.policies import FullAttentionPolicy, StreamingLLMPolicy
from repro.generation.generator import Generator
from repro.generation.sampler import GreedySampler
from repro.models.config import GenerationConfig
from repro.models.transformer import DecoderLM
from repro.speculative import SpeculationConfig, SpeculativeGenerator
from tests.conftest import tiny_config

PROMPT_LEN = 32
MAX_NEW = 16


def _prompt(vocab=64, seed=7, length=PROMPT_LEN):
    return np.random.default_rng(seed).integers(0, vocab, size=length).astype(np.int64)


def _vanilla(model, prompt, config):
    return Generator(model, FullAttentionPolicy()).generate(
        prompt, config, sampler=GreedySampler()
    )


class TestEquivalence:
    def test_matches_vanilla_across_positional_families(self, tiny_model):
        prompt = _prompt()
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        reference = _vanilla(tiny_model, prompt, config)
        result = SpeculativeGenerator(tiny_model, SpeculationConfig(k=4)).generate(
            prompt, config
        )
        assert result.sequences == reference.sequences
        assert result.log_probs == reference.log_probs

    def test_custom_policy_drafter(self, tiny_rope_model):
        prompt = _prompt()
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        reference = _vanilla(tiny_rope_model, prompt, config)
        spec = SpeculationConfig(
            k=3,
            drafter="policy",
            drafter_policy_factory=lambda: StreamingLLMPolicy(
                CachePolicyConfig(kv_budget=12)
            ),
        )
        result = SpeculativeGenerator(tiny_rope_model, spec).generate(prompt, config)
        assert result.sequences == reference.sequences
        assert result.log_probs == reference.log_probs

    def test_smaller_drafter_model(self, tiny_rope_model):
        """A separate (smaller) drafter model drafts; output is still the target's."""
        drafter_model = DecoderLM(tiny_config("rope", n_layers=1, d_ff=32), seed=3)
        prompt = _prompt()
        config = GenerationConfig(max_new_tokens=MAX_NEW)
        reference = _vanilla(tiny_rope_model, prompt, config)
        spec = SpeculationConfig(k=3, drafter_model=drafter_model)
        result = SpeculativeGenerator(tiny_rope_model, spec).generate(prompt, config)
        assert result.sequences == reference.sequences
        assert result.log_probs == reference.log_probs

    def test_drafter_model_vocab_mismatch_rejected(self, tiny_rope_model):
        other = DecoderLM(tiny_config("rope", vocab_size=32), seed=0)
        with pytest.raises(ValueError):
            SpeculativeGenerator(tiny_rope_model, SpeculationConfig(drafter_model=other))

    def test_batch_prompts_rejected(self, tiny_rope_model):
        with pytest.raises(ValueError):
            SpeculativeGenerator(tiny_rope_model).generate(
                np.zeros((2, 8), dtype=np.int64)
            )


class TestEdgeCases:
    def test_single_token_budget(self, tiny_rope_model):
        prompt = _prompt()
        config = GenerationConfig(max_new_tokens=1)
        reference = _vanilla(tiny_rope_model, prompt, config)
        result = SpeculativeGenerator(tiny_rope_model, SpeculationConfig(k=4)).generate(
            prompt, config
        )
        assert result.sequences == reference.sequences
        assert result.log_probs == reference.log_probs
        assert len(result.sequences[0]) == 1

    def test_eos_at_first_token(self, tiny_rope_model):
        prompt = _prompt()
        first = _vanilla(
            tiny_rope_model, prompt, GenerationConfig(max_new_tokens=1)
        ).sequences[0][0]
        config = GenerationConfig(max_new_tokens=MAX_NEW, eos_token_id=first)
        result = SpeculativeGenerator(tiny_rope_model, SpeculationConfig(k=4)).generate(
            prompt, config
        )
        assert result.sequences[0] == [first]
        assert result.speculation["rounds"] == 0

    def test_eos_inside_draft_block(self, tiny_rope_model):
        """EOS produced mid-verify must cut the commit exactly like vanilla."""
        prompt = _prompt()
        config_free = GenerationConfig(max_new_tokens=MAX_NEW)
        free_tokens = _vanilla(tiny_rope_model, prompt, config_free).sequences[0]
        eos = free_tokens[5]
        config = GenerationConfig(max_new_tokens=MAX_NEW, eos_token_id=eos)
        reference = _vanilla(tiny_rope_model, prompt, config)
        result = SpeculativeGenerator(tiny_rope_model, SpeculationConfig(k=6)).generate(
            prompt, config
        )
        assert result.sequences == reference.sequences
        assert result.log_probs == reference.log_probs
        assert result.sequences[0][-1] == eos

    def test_k_larger_than_budget(self, tiny_rope_model):
        prompt = _prompt()
        config = GenerationConfig(max_new_tokens=3)
        reference = _vanilla(tiny_rope_model, prompt, config)
        result = SpeculativeGenerator(tiny_rope_model, SpeculationConfig(k=12)).generate(
            prompt, config
        )
        assert result.sequences == reference.sequences


class TestSharedStoreAccounting:
    def test_target_and_drafter_share_one_store(self, tiny_rope_model):
        generator = SpeculativeGenerator(tiny_rope_model, SpeculationConfig(k=4))
        session = generator._prepare(_prompt(), GenerationConfig(max_new_tokens=MAX_NEW))
        target_pool = session["manager"].caches[0].pool
        drafter_pool = session["drafter"].manager.caches[0].pool
        assert target_pool is drafter_pool

    def test_drafter_release_returns_pages(self, tiny_rope_model):
        generator = SpeculativeGenerator(tiny_rope_model, SpeculationConfig(k=4))
        session = generator._prepare(_prompt(), GenerationConfig(max_new_tokens=MAX_NEW))
        generator._run(session)
        # After the run the drafter has released everything; only the target's
        # pages remain resident.
        store = session["manager"].store
        target_pages = sum(
            len(table.pages) for cache in session["manager"].caches for table in cache.tables
        )
        assert store.used_pages == target_pages

    def test_telemetry_counts_are_consistent(self, tiny_rope_model):
        result = SpeculativeGenerator(tiny_rope_model, SpeculationConfig(k=4)).generate(
            _prompt(), GenerationConfig(max_new_tokens=MAX_NEW)
        )
        spec = result.speculation
        # The first token comes from the prompt logits; rounds commit the rest.
        assert spec["committed"] == len(result.sequences[0]) - 1
        assert spec["accepted"] <= spec["drafted"]
        assert 0.0 <= spec["acceptance_rate"] <= 1.0
        # Every verify round commits at least one token.
        assert spec["committed"] >= spec["rounds"]
