"""Tests for vocabulary, word-level tokenizer and BPE tokenizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenizer.bpe import BPETokenizer
from repro.tokenizer.vocab import Vocabulary
from repro.tokenizer.word import WordTokenizer

words = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6), min_size=1, max_size=12
)


class TestVocabulary:
    def test_special_ids_are_stable(self):
        vocab = Vocabulary(["zebra", "apple"])
        assert vocab.pad_id == 0
        assert vocab.bos_id == 1
        assert vocab.eos_id == 2
        assert vocab.unk_id == 3
        assert vocab.sep_id == 4

    def test_add_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("hello")
        second = vocab.add("hello")
        assert first == second

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary(["known"])
        assert vocab.token_to_id("unknown-token") == vocab.unk_id

    def test_decode_skips_specials(self):
        vocab = Vocabulary(["a", "b"])
        ids = [
            vocab.bos_id,
            vocab.token_to_id("a"),
            vocab.sep_id,
            vocab.token_to_id("b"),
            vocab.eos_id,
        ]
        assert vocab.decode_ids(ids) == ["a", "b"]
        assert len(vocab.decode_ids(ids, skip_special=False)) == 5

    def test_out_of_range_id(self):
        with pytest.raises(IndexError):
            Vocabulary().id_to_token(999)

    def test_contains_and_len(self):
        vocab = Vocabulary(["x"])
        assert "x" in vocab and "y" not in vocab
        assert len(vocab) == 6  # 5 specials + 1


class TestWordTokenizer:
    def test_round_trip(self):
        tokenizer = WordTokenizer.from_corpus(["alice likes chess . bob visited paris ."])
        text = "alice likes chess ."
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_punctuation_separated(self):
        assert WordTokenizer.word_split("hello, world!") == ["hello", ",", "world", "!"]

    def test_lowercasing(self):
        tokenizer = WordTokenizer.from_corpus(["Alice"])
        assert tokenizer.encode("ALICE") == tokenizer.encode("alice")

    def test_bos_eos_flags(self):
        tokenizer = WordTokenizer.from_corpus(["a b"])
        ids = tokenizer.encode("a b", add_bos=True, add_eos=True)
        assert ids[0] == tokenizer.vocab.bos_id and ids[-1] == tokenizer.vocab.eos_id

    def test_oov_maps_to_unk(self):
        tokenizer = WordTokenizer.from_corpus(["a b c"])
        assert tokenizer.encode("zzz") == [tokenizer.vocab.unk_id]

    def test_max_vocab_limits_size(self):
        tokenizer = WordTokenizer.from_corpus(["a b c d e f g h"], max_vocab=3)
        assert tokenizer.vocab_size == 5 + 3

    def test_frequency_ordering_deterministic(self):
        a = WordTokenizer.from_corpus(["x y y z z z"])
        b = WordTokenizer.from_corpus(["z z z y y x"])
        assert a.vocab.tokens() == b.vocab.tokens()

    def test_pad_right_and_left(self):
        tokenizer = WordTokenizer.from_corpus(["a b c"])
        ids = tokenizer.encode("a b c")
        right = tokenizer.pad(ids, 6)
        left = tokenizer.pad(ids, 6, left=True)
        assert right.shape == (6,) and left.shape == (6,)
        assert right[-1] == tokenizer.vocab.pad_id and left[0] == tokenizer.vocab.pad_id
        # Truncation
        assert tokenizer.pad(ids, 2).shape == (2,)

    @given(words)
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip(self, tokens):
        text = " ".join(tokens)
        tokenizer = WordTokenizer.from_corpus([text])
        assert tokenizer.decode(tokenizer.encode(text)) == text.lower()


class TestBPETokenizer:
    def test_round_trip_on_training_corpus(self):
        corpus = ["the cat sat on the mat", "the dog sat on the log"]
        tokenizer = BPETokenizer.train(corpus, n_merges=50)
        for text in corpus:
            assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_merges_reduce_sequence_length(self):
        corpus = ["banana banana banana bandana"] * 4
        no_merge = BPETokenizer.train(corpus, n_merges=0)
        merged = BPETokenizer.train(corpus, n_merges=60)
        text = "banana bandana"
        assert len(merged.encode(text)) < len(no_merge.encode(text))

    def test_unseen_characters_become_unk(self):
        tokenizer = BPETokenizer.train(["abc abc"], n_merges=5)
        ids = tokenizer.encode("xyz")
        assert all(i == tokenizer.vocab.unk_id for i in ids)

    def test_vocab_size_positive(self):
        tokenizer = BPETokenizer.train(["hello world"], n_merges=10)
        assert tokenizer.vocab_size > 5

    @given(words)
    @settings(max_examples=15, deadline=None)
    def test_property_round_trip_within_corpus(self, tokens):
        text = " ".join(tokens)
        tokenizer = BPETokenizer.train([text], n_merges=30)
        assert tokenizer.decode(tokenizer.encode(text)) == text
