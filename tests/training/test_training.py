"""Tests for optimizers, learning-rate schedules and the trainer."""

import numpy as np
import pytest

from repro.models.layers import Linear, Module
from repro.models.transformer import DecoderLM
from repro.training.lr_schedule import ConstantLR, CosineWithWarmup, LinearWarmup
from repro.training.optimizer import Adam, SGD, clip_gradients
from repro.training.trainer import Trainer, TrainingConfig
from tests.conftest import tiny_config


class _Quadratic(Module):
    """Minimal model with a single parameter vector, loss = ||w - target||^2."""

    def __init__(self, target):
        super().__init__()
        self.params = {"w": np.zeros_like(target)}
        self.grads = {"w": np.zeros_like(target)}
        self.target = target

    def loss_and_grad(self):
        diff = self.params["w"] - self.target
        self.grads["w"][...] = 2 * diff
        return float(np.sum(diff**2))


class TestOptimizers:
    def test_adam_converges_on_quadratic(self):
        model = _Quadratic(np.array([1.0, -2.0, 3.0]))
        optimizer = Adam(model, lr=0.1)
        for _ in range(300):
            model.loss_and_grad()
            optimizer.step()
        np.testing.assert_allclose(model.params["w"], model.target, atol=1e-2)

    def test_sgd_converges_on_quadratic(self):
        model = _Quadratic(np.array([0.5, 0.25]))
        optimizer = SGD(model, lr=0.1)
        for _ in range(200):
            model.loss_and_grad()
            optimizer.step()
        np.testing.assert_allclose(model.params["w"], model.target, atol=1e-3)

    def test_adam_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam(_Quadratic(np.ones(2)), lr=0.0)

    def test_weight_decay_shrinks_weights(self, rng):
        layer = Linear(4, 4, rng)
        layer.params["W"][...] = 1.0
        optimizer = Adam(layer, lr=0.0 + 1e-12, weight_decay=0.1)
        # With (almost) zero lr the Adam update itself is negligible but decay
        # is proportional to lr, so use a real lr and zero gradients instead.
        optimizer = Adam(layer, lr=0.01, weight_decay=0.5)
        layer.zero_grad()
        before = np.abs(layer.params["W"]).mean()
        optimizer.step()
        assert np.abs(layer.params["W"]).mean() < before

    def test_clip_gradients(self, rng):
        layer = Linear(3, 3, rng)
        layer.grads["W"][...] = 10.0
        layer.grads["b"][...] = 10.0
        norm = clip_gradients(layer, max_norm=1.0)
        assert norm > 1.0
        total = np.sqrt(sum(float(np.sum(g * g)) for _, g in layer.named_gradients()))
        np.testing.assert_allclose(total, 1.0, atol=1e-9)

    def test_state_size(self):
        model = _Quadratic(np.ones(5))
        assert Adam(model).state_size() == 10


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1)(0) == 0.1
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_linear_warmup(self):
        schedule = LinearWarmup(1.0, warmup_steps=10)
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(9) == pytest.approx(1.0)
        assert schedule(50) == 1.0

    def test_cosine_decay(self):
        schedule = CosineWithWarmup(1.0, warmup_steps=5, total_steps=50, min_lr=0.1)
        assert schedule(0) < schedule(4)
        assert schedule(5) == pytest.approx(1.0)
        assert schedule(50) == pytest.approx(0.1)
        values = [schedule(t) for t in range(5, 51)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            CosineWithWarmup(1.0, warmup_steps=10, total_steps=5)


class TestTrainer:
    def test_training_reduces_loss(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=2)
        token = 7
        pairs = []
        for _ in range(16):
            seq = np.full(16, token)
            seq[0] = 1
            pairs.append((seq, np.concatenate([seq[1:], [2]])))
        trainer = Trainer(model, TrainingConfig(n_steps=30, batch_size=4, log_every=0))
        result = trainer.train_on_dataset(pairs)
        assert result.improved()
        assert result.final_loss < result.initial_loss
        assert result.n_steps == 30
        assert len(result.losses) == 30

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(n_steps=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)

    def test_empty_dataset_rejected(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=0)
        trainer = Trainer(model, TrainingConfig(n_steps=2, batch_size=2))
        with pytest.raises(ValueError):
            trainer.train_on_dataset([])

    def test_finite_iterable_is_cycled(self, rng):
        model = DecoderLM(tiny_config("rope"), seed=0)
        trainer = Trainer(model, TrainingConfig(n_steps=5, batch_size=2, log_every=0))
        seq = rng.integers(0, 64, size=(2, 8))
        batches = [(seq, np.roll(seq, -1, axis=1))]
        result = trainer.train(iter(batches))
        assert len(result.losses) == 5

    def test_log_fn_called(self, rng):
        messages = []
        model = DecoderLM(tiny_config("rope"), seed=0)
        trainer = Trainer(
            model, TrainingConfig(n_steps=3, batch_size=2, log_every=1), log_fn=messages.append
        )
        seq = rng.integers(0, 64, size=(2, 8))
        trainer.train(iter([(seq, np.roll(seq, -1, axis=1))]))
        assert len(messages) == 3
