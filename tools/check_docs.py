"""Documentation link checker for the CI docs job.

Verifies, with no dependencies beyond the standard library, that:

1. ``README.md`` exists and every page in ``docs/`` is reachable from it by
   following relative markdown links (the repo's navigability contract);
2. every relative markdown link and image in ``README.md`` and ``docs/*.md``
   resolves to an existing file (anchors are stripped; external ``http(s)``
   and ``mailto`` links are not fetched);
3. every `path`-like inline-code reference to a tracked top-level artifact
   (``docs/…``, ``benchmarks/…``, ``tools/…``, ``examples/…``, ``src/…``,
   ``tests/…``) in those pages points at something that exists — stale file
   references are doc drift.

Exit status is non-zero on any failure, so CI can gate on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
README = REPO_ROOT / "README.md"

#: Inline markdown links/images: [text](target) — fenced code is stripped first.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
#: Inline-code path references like `docs/kvcache.md` or `tools/check_docs.py`.
CODE_PATH_RE = re.compile(
    r"`((?:docs|benchmarks|tools|examples|src|tests)/[A-Za-z0-9_./-]+)`"
)
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def _strip_code(text: str) -> str:
    """Remove fenced code blocks (shell snippets are full of fake 'links')."""
    return FENCE_RE.sub("", text)


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


def check_file(path: Path) -> tuple[list[Path], list[str]]:
    """Return ``(linked_markdown_files, errors)`` for one markdown page."""
    text = _strip_code(path.read_text())
    errors: list[str] = []
    linked: list[Path] = []
    for match in LINK_RE.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or _is_external(match.group(1)):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: dead link -> {target}")
        elif resolved.suffix == ".md":
            linked.append(resolved)
    for match in CODE_PATH_RE.finditer(text):
        target = (REPO_ROOT / match.group(1)).resolve()
        if not target.exists():
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: stale path reference -> {match.group(1)}"
            )
    return linked, errors


def main() -> int:
    """Walk the link graph from README.md and report every problem found."""
    errors: list[str] = []
    if not README.exists():
        print("FAILED: README.md does not exist")
        return 1

    # Walk the link graph from README.md.
    reachable: set[Path] = set()
    queue = [README.resolve()]
    while queue:
        page = queue.pop()
        if page in reachable:
            continue
        reachable.add(page)
        linked, page_errors = check_file(page)
        errors.extend(page_errors)
        queue.extend(linked)

    for doc in sorted(DOCS_DIR.glob("*.md")):
        if doc.resolve() not in reachable:
            errors.append(f"docs/{doc.name}: not reachable from README.md")

    checked = sorted(str(p.relative_to(REPO_ROOT)) for p in reachable)
    print(f"checked {len(checked)} pages: {', '.join(checked)}")
    if errors:
        print(f"\nFAILED — {len(errors)} problem(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print("OK — README reaches every docs page and no link is dead")
    return 0


if __name__ == "__main__":
    sys.exit(main())
