"""Pinned seeded chaos campaign for the fault-tolerant serving engine.

``make chaos`` (and the CI ``chaos`` job) runs this script: a deterministic
fault-injection campaign of at least ``--min-steps`` engine steps (default
1000) spread across float64 and int8 KV precision, vanilla and speculative
decoding, growable and fixed-size pools.  Every round seeds a fresh
:class:`~repro.serving.faults.FaultInjector` from the pinned campaign seed
and replays a fixed workload, checking after **every** engine step that the
pool-integrity audit (`engine.check_invariants`) is clean, and at the end of
every round that

* every request finished (retried transparently or retired with
  ``FinishReason.ERROR`` after exhausting its budget),
* all surviving requests are **bit-identical** (tokens and log-probs) to a
  fault-free reference run of the same configuration,
* a finally-failed request preserved its error message and traceback, and
* the paged store leaks nothing: once the prefix registry releases its
  pins, every pool page is free with a zero refcount.

Across the whole campaign all six injection points — ``page_alloc``,
``prefill``, ``decode``, ``verify``, ``draft``, ``spill_io`` — must actually
have fired; the two tiered-offload rounds run with tier-0 budgets tight
enough that spill/restore traffic is constant, so mid-transfer faults
exercise the unwind paths (``spill_io`` fires *before* any pool or arena
state mutates, and survivors must still be bit-exact).
Any violation exits non-zero with a replayable fault schedule, so a CI
failure is a one-liner to reproduce locally (see ``docs/robustness.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import CachePolicyConfig  # noqa: E402
from repro.core.policies import WindowAttentionPolicy  # noqa: E402
from repro.generation.sampler import GreedySampler  # noqa: E402
from repro.models.config import GenerationConfig, ModelConfig  # noqa: E402
from repro.models.transformer import DecoderLM  # noqa: E402
from repro.serving.engine import ContinuousBatchingEngine  # noqa: E402
from repro.serving.faults import INJECTION_POINTS, FaultInjector  # noqa: E402
from repro.serving.request import FinishReason  # noqa: E402
from repro.speculative.config import SpeculationConfig  # noqa: E402

CAMPAIGN_SEED = 20240817
VOCAB = 96
MAX_NEW_TOKENS = 8
PROMPT_LENGTHS = (41, 18, 29, 37)
FAULT_RATE = 0.03

#: (name, kv_dtype, drafter, max_pool_tokens, tier0_budget, spill_backend) —
#: the campaign's corners: both KV precisions, speculation on and off, one
#: fixed-size pool config so preemption unwinds interleave with fault
#: unwinds, and two tiered-offload rounds whose tight tier-0 budgets keep
#: spill/restore traffic constant so ``spill_io`` faults land mid-transfer.
CONFIGS = [
    ("fp64-vanilla", None, None, None, None, None),
    ("fp64-vanilla-smallpool", None, None, 24 * 16, None, None),
    ("fp64-spec-window", None, "window", None, None, None),
    ("int8-vanilla", "int8", None, None, None, None),
    ("int8-spec-ngram", "int8", "ngram", None, None, None),
    ("fp64-offload-compressed", None, None, 24 * 16, 160_000, "compressed"),
    ("int8-offload-mmap", "int8", None, 24 * 16, 24_000, "mmap"),
]


def build_model() -> DecoderLM:
    """Small pinned-seed decoder shared by every campaign round."""
    return DecoderLM(
        ModelConfig(
            vocab_size=VOCAB,
            d_model=32,
            n_layers=2,
            n_heads=4,
            d_ff=64,
            max_seq_len=256,
            positional="rope",
        ),
        seed=0,
    )


def build_prompts() -> list[np.ndarray]:
    """The fixed mixed-length workload, pinned by the campaign seed."""
    rng = np.random.default_rng(CAMPAIGN_SEED)
    return [rng.integers(0, VOCAB, size=n).astype(np.int64) for n in PROMPT_LENGTHS]


def build_engine(model, kv_dtype, drafter, max_pool_tokens, tier0_budget, spill_backend, faults):
    """Assemble one engine for a (precision, speculation, pool, tier) corner."""
    speculation = None if drafter is None else SpeculationConfig(k=3, drafter=drafter)
    policy_factory = None
    if drafter is None:
        policy_factory = lambda: WindowAttentionPolicy(CachePolicyConfig(kv_fraction=0.5))
    return ContinuousBatchingEngine(
        model,
        policy_factory=policy_factory,
        max_batch_size=3,
        kv_dtype=kv_dtype,
        enable_prefix_sharing=False,
        max_pool_tokens=max_pool_tokens,
        tier0_budget=tier0_budget,
        spill_backend=spill_backend,
        speculation=speculation,
        faults=faults,
        fault_tolerant=True,
        max_retries=3,
        retry_backoff_steps=1,
    )


def run_round(model, prompts, config, faults, audit_every_step):
    """Run one workload round; return ``(engine, states, steps, violations)``."""
    name, kv_dtype, drafter, max_pool_tokens, tier0_budget, spill_backend = config
    engine = build_engine(
        model, kv_dtype, drafter, max_pool_tokens, tier0_budget, spill_backend, faults
    )
    gen = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS)
    states = [engine.submit(p, gen, sampler=GreedySampler()) for p in prompts]
    steps = 0
    violations: list[str] = []
    while engine.has_work:
        engine.step()
        steps += 1
        if audit_every_step:
            violations.extend(
                f"[{name}] step {steps}: {v}" for v in engine.check_invariants()
            )
    # Zero-leak check: after the registry lets go, every page must be free.
    if engine._manager is not None:
        engine._manager.registry.clear()
        for layer, pool in enumerate(engine._manager.store.pools):
            leaked = int((pool.refcounts != 0).sum())
            if leaked or pool.free_pages != pool.n_pages:
                violations.append(
                    f"[{name}] layer {layer}: {leaked} leaked page(s) after retire"
                )
            arena = getattr(pool, "arena", None)
            if arena is not None and len(arena):
                violations.append(
                    f"[{name}] layer {layer}: {len(arena)} spilled page(s) "
                    "leaked in the tier-1 arena after retire"
                )
    return engine, states, steps, violations


def check_equivalence(name, states, reference, problems):
    """Survivors must be bit-identical to the fault-free reference."""
    for state, ref in zip(states, reference):
        rid = state.request_id
        if not state.finished:
            problems.append(f"[{name}] request {rid} never finished")
            continue
        if state.finish_reason is FinishReason.ERROR:
            if not state.error or not state.error_traceback:
                problems.append(f"[{name}] request {rid} lost its error context")
            continue
        if state.finish_reason is not ref.finish_reason:
            problems.append(
                f"[{name}] request {rid} finish_reason "
                f"{state.finish_reason} != {ref.finish_reason}"
            )
        if state.tokens != ref.tokens:
            problems.append(f"[{name}] request {rid} tokens diverged from reference")
        elif state.result().log_probs != ref.result().log_probs:
            problems.append(f"[{name}] request {rid} log-probs diverged from reference")


def main(argv=None) -> int:
    """Run the campaign; exit non-zero on any violation."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-steps",
        type=int,
        default=1000,
        help="keep adding rounds until the campaign has run this many engine steps",
    )
    parser.add_argument(
        "--rate", type=float, default=FAULT_RATE, help="per-check fault probability"
    )
    args = parser.parse_args(argv)

    model = build_model()
    prompts = build_prompts()
    started = time.perf_counter()

    # One fault-free reference per configuration (the workload is fixed, so
    # the reference is too — every faulted round compares against it).
    references = {}
    for config in CONFIGS:
        _, ref_states, ref_steps, ref_violations = run_round(
            model, prompts, config, faults=None, audit_every_step=True
        )
        if ref_violations:
            print(f"FAILED — fault-free reference for {config[0]} is dirty:")
            for violation in ref_violations:
                print(f"  {violation}")
            return 1
        references[config[0]] = ref_states
        print(f"reference[{config[0]}]: {ref_steps} steps, clean")

    total_steps = 0
    total_faults = 0
    total_retries = 0
    total_errors = 0
    fired_points: set[str] = set()
    problems: list[str] = []
    round_index = 0
    while total_steps < args.min_steps:
        config = CONFIGS[round_index % len(CONFIGS)]
        name = config[0]
        fault_seed = CAMPAIGN_SEED + round_index
        faults = FaultInjector(rate=args.rate, seed=fault_seed)
        engine, states, steps, violations = run_round(
            model, prompts, config, faults, audit_every_step=True
        )
        total_steps += steps
        total_faults += len(faults.fired)
        telemetry = engine.fault_telemetry()
        total_retries += telemetry["retries"]
        total_errors += sum(1 for s in states if s.finish_reason is FinishReason.ERROR)
        fired_points.update(point for point, _ in faults.fired)
        if violations:
            problems.extend(violations)
        check_equivalence(name, states, references[name], problems)
        if problems:
            print(f"FAILED at round {round_index} ({name}, seed {fault_seed}):")
            for problem in problems:
                print(f"  {problem}")
            print(f"  replay schedule: {faults.fired_schedule()!r}")
            return 1
        round_index += 1

    missing = set(INJECTION_POINTS) - fired_points
    elapsed = time.perf_counter() - started
    print(
        f"chaos campaign: {round_index} rounds, {total_steps} engine steps, "
        f"{total_faults} faults fired ({total_retries} retries, "
        f"{total_errors} quarantined), {elapsed:.1f}s"
    )
    print(f"injection points fired: {sorted(fired_points)}")
    if missing:
        print(f"FAILED — injection points never fired: {sorted(missing)}")
        return 1
    print("OK — zero integrity violations, zero leaks, survivors bit-exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
