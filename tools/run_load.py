"""Trace-driven load harness: replay a seeded workload, report percentiles.

``make load`` runs this script: it generates a seeded trace (Poisson or
bursty arrivals, Zipf-shared prompt prefixes, mixed lengths and SLO tiers),
replays it through a :class:`~repro.serving.engine.ContinuousBatchingEngine`
in virtual step-time (:mod:`repro.perfmodel.serving`), and writes a
deterministic JSON report of per-request TTFT/TPOT/E2E percentiles,
per-tier goodput and engine telemetry.  ``make load-smoke`` runs the pinned
smoke configuration, replays it **twice** and asserts the two reports are
byte-identical and carry the expected schema — the determinism contract CI
gates on (the report is uploaded as a build artifact).

Knobs worth turning (see ``docs/workloads.md`` for the full story):

* ``--arrival bursty`` — Markov-modulated bursts instead of Poisson.
* ``--chunk-tokens N`` — chunked-prefill budget (0 disables); watch p99
  TTFT drop as long prompts stop stalling their neighbours.
* ``--scheduler priority`` — SLO-tiered admission + priority preemption;
  compare the per-tier TTFT sections of the report.
* ``--replicas N`` — replay through a
  :class:`~repro.serving.sharded.ShardedEngine` of N engine replicas
  behind the prefix-affinity router (0 = plain single engine); see
  ``docs/sharding.md``.  ``--smoke --replicas 1`` additionally asserts the
  sharded report's engine+latency sections are byte-identical to the
  single-engine report (the routing-never-changes-output contract).

Example::

    python tools/run_load.py --arrival bursty --chunk-tokens 32 \
        --scheduler priority --output reports/load_report.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.models.config import ModelConfig  # noqa: E402
from repro.models.transformer import DecoderLM  # noqa: E402
from repro.perfmodel.serving import StepCostModel  # noqa: E402
from repro.serving.engine import ContinuousBatchingEngine  # noqa: E402
from repro.serving.scheduler import PagedScheduler  # noqa: E402
from repro.serving.sharded import ReplicaSpec, ShardedEngine  # noqa: E402
from repro.serving.slo import SLOSpec  # noqa: E402
from repro.serving.workload import (  # noqa: E402
    Trace,
    WorkloadConfig,
    generate_trace,
    replay_trace,
)
from repro.serving.slo import PriorityScheduler  # noqa: E402

#: Keys the smoke check requires in the latency section of the report.
REPORT_SCHEMA_KEYS = (
    "n_requests",
    "n_completed",
    "finish_reasons",
    "ttft",
    "tpot",
    "e2e",
    "per_tier",
    "goodput",
    "throughput",
)


def model_config(args: argparse.Namespace) -> ModelConfig:
    """The small rope model config the harness drives (CPU-friendly)."""
    return ModelConfig(
        vocab_size=args.vocab_size,
        d_model=64,
        n_layers=2,
        n_heads=4,
        d_ff=128,
        max_seq_len=512,
        positional="rope",
    )


def build_model(args: argparse.Namespace) -> DecoderLM:
    """The seeded harness model (every sharded replica rebuilds the same)."""
    return DecoderLM(model_config(args), seed=0)


def build_engine(model: DecoderLM, args: argparse.Namespace) -> ContinuousBatchingEngine:
    """A fresh engine wired with the requested scheduler and chunk budget."""
    chunk = args.chunk_tokens if args.chunk_tokens > 0 else None
    sched_cls = PriorityScheduler if args.scheduler == "priority" else PagedScheduler
    scheduler = sched_cls(
        max_batch_size=args.max_batch_size, prefill_chunk_tokens=chunk
    )
    return ContinuousBatchingEngine(model, scheduler=scheduler)


def workload_config(args: argparse.Namespace) -> WorkloadConfig:
    """The trace-generator config implied by the CLI flags."""
    return WorkloadConfig(
        n_requests=args.n_requests,
        vocab_size=args.vocab_size,
        arrival=args.arrival,
        mean_interarrival=args.mean_interarrival,
        prompt_len_range=(8, 96),
        suffix_len_range=(4, 32),
        output_len_choices=(4, 16, 48),
        output_len_weights=(0.3, 0.5, 0.2),
        tier_weights={0: 0.3, 1: 0.5, 2: 0.2},
    )


def build_sharded(args: argparse.Namespace) -> ShardedEngine:
    """A sharded front-end over ``--replicas`` engine replicas."""
    chunk = args.chunk_tokens if args.chunk_tokens > 0 else None
    spec = ReplicaSpec(
        model_config=model_config(args),
        model_seed=0,
        scheduler=args.scheduler,
        max_batch_size=args.max_batch_size,
        prefill_chunk_tokens=chunk,
    )
    return ShardedEngine(spec, args.replicas, backend=args.replica_backend)


def run_once(model: DecoderLM, trace: Trace, args: argparse.Namespace) -> dict:
    """One full replay; returns the structured report dict."""
    sharded = args.replicas > 0
    engine = build_sharded(args) if sharded else build_engine(model, args)
    cost = StepCostModel()
    slo = SLOSpec.three_tier(ttft=args.slo_ttft, e2e=args.slo_e2e)
    try:
        result = replay_trace(engine, trace, cost, slo=slo)
    finally:
        if sharded:
            engine.shutdown()
    return {
        "harness": {
            "seed": args.seed,
            "arrival": args.arrival,
            "n_requests": args.n_requests,
            "chunk_tokens": args.chunk_tokens,
            "scheduler": args.scheduler,
            "max_batch_size": args.max_batch_size,
            "replicas": args.replicas,
            "slo": {"ttft": args.slo_ttft, "e2e": args.slo_e2e},
            "cost_model": {
                "fixed": cost.fixed,
                "per_prefill_token": cost.per_prefill_token,
                "per_decode_row": cost.per_decode_row,
            },
        },
        "engine": result.engine_stats,
        "latency": result.report.to_dict(),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n-requests", type=int, default=64)
    parser.add_argument("--vocab-size", type=int, default=256)
    parser.add_argument("--arrival", choices=("poisson", "bursty"), default="poisson")
    parser.add_argument("--mean-interarrival", type=float, default=8.0)
    parser.add_argument(
        "--chunk-tokens",
        type=int,
        default=32,
        help="chunked-prefill budget in tokens (0 disables chunking)",
    )
    parser.add_argument("--scheduler", choices=("paged", "priority"), default="priority")
    parser.add_argument("--max-batch-size", type=int, default=4)
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="replay through a ShardedEngine of N replicas (0 = single engine)",
    )
    parser.add_argument(
        "--replica-backend",
        choices=("process", "inline"),
        default="process",
        help="sharded backend: multiprocessing workers or in-process replicas",
    )
    parser.add_argument("--slo-ttft", type=float, default=200.0)
    parser.add_argument("--slo-e2e", type=float, default=1200.0)
    parser.add_argument("--output", type=Path, default=Path("reports/load_report.json"))
    parser.add_argument(
        "--trace-out", type=Path, default=None, help="also write the trace as JSON"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="pinned tiny trace; replay twice and assert byte-identical reports",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.n_requests = 16
        args.mean_interarrival = 6.0

    trace = generate_trace(workload_config(args), seed=args.seed)
    if args.trace_out is not None:
        args.trace_out.parent.mkdir(parents=True, exist_ok=True)
        args.trace_out.write_text(trace.to_json(indent=2) + "\n")
        print(f"trace ({len(trace)} events) -> {args.trace_out}")

    model = build_model(args)
    report = run_once(model, trace, args)
    text = json.dumps(report, indent=2, sort_keys=True)

    if args.smoke:
        second = json.dumps(run_once(model, trace, args), indent=2, sort_keys=True)
        if text != second:
            print("FAIL: two replays of the same trace produced different reports")
            return 1
        missing = [k for k in REPORT_SCHEMA_KEYS if k not in report["latency"]]
        if missing:
            print(f"FAIL: report missing latency keys: {missing}")
            return 1
        if args.replicas == 1:
            # The sharded bit-exactness contract at N=1: same engine stats,
            # same latency report, byte for byte, as the plain engine.
            solo_args = argparse.Namespace(**vars(args))
            solo_args.replicas = 0
            solo = run_once(model, trace, solo_args)
            for section in ("engine", "latency"):
                ours = json.dumps(report[section], indent=2, sort_keys=True)
                theirs = json.dumps(solo[section], indent=2, sort_keys=True)
                if ours != theirs:
                    print(
                        f"FAIL: sharded N=1 {section} report differs from "
                        "the single-engine report"
                    )
                    return 1
            print("smoke OK: sharded N=1 byte-identical to single engine")
        print("smoke OK: byte-identical replays, schema complete")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(text + "\n")
    lat = report["latency"]
    print(
        f"{lat['n_completed']}/{lat['n_requests']} completed | "
        f"goodput {lat['goodput']:.3f} | "
        f"TTFT p50/p99 {lat['ttft']['p50']:.1f}/{lat['ttft']['p99']:.1f} | "
        f"TPOT p50 {lat['tpot']['p50']:.2f} | "
        f"chunks {report['engine']['n_prefill_chunks']} "
        f"preempts {report['engine']['n_preemptions']}"
    )
    print(f"report -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
